package spill_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"simdtree/internal/checkpoint"
	"simdtree/internal/metrics"
	"simdtree/internal/puzzle"
	"simdtree/internal/search"
	"simdtree/internal/simd"
	"simdtree/internal/spill"
	"simdtree/internal/synthetic"
	"simdtree/internal/trace"
	"simdtree/internal/wire"
)

// artifacts is every observable output of one run: the final statistics,
// the full trace (donor lists included), the serialised mid-run
// checkpoints in order, and the final-state checkpoint.  The spill
// equivalence contract is that none of these depend on the memory budget.
type artifacts struct {
	stats metrics.Stats
	tr    *trace.Trace
	mids  [][]byte
	final []byte
	spill spill.Stats
}

// runBudgeted performs one full run under the given memory budget
// (0 = unbounded), capturing donors, checkpointing every 32 cycles, and
// snapshotting the quiescent machine at the end.
func runBudgeted[S any](t *testing.T, dom search.Domain[S], codec wire.Codec[S], label string, p int, budget int64) artifacts {
	t.Helper()
	sch, err := simd.ParseScheme[S](label)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{CaptureDonors: true}
	opts := simd.Options{P: p, Trace: tr, CheckpointEvery: 32, MemBudget: budget}
	m, err := simd.NewMachine[S](dom, sch, opts)
	if err != nil {
		t.Fatal(err)
	}
	var mgr *spill.Manager[S]
	if budget > 0 {
		mgr, err = spill.NewManager[S](codec, spill.Config{
			Dir:       t.TempDir(),
			MemBudget: budget,
			NodeBytes: wire.NodeSize(codec, dom.Root()),
		})
		if err != nil {
			t.Fatal(err)
		}
		m.SetSpiller(mgr)
	}
	a := artifacts{tr: tr}
	meta := checkpoint.Meta{Domain: "spill-equivalence", Scheme: label}
	m.OnCheckpoint(func(snap *simd.Snapshot[S]) error {
		blob, err := checkpoint.Encode[S](codec, meta, snap)
		if err != nil {
			return err
		}
		a.mids = append(a.mids, blob)
		return nil
	})
	a.stats, err = m.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a.final, err = checkpoint.Encode[S](codec, meta, snap)
	if err != nil {
		t.Fatal(err)
	}
	if mgr != nil {
		a.spill = mgr.Stats()
	}
	return a
}

// checkEquivalent requires a budgeted run to be output-identical to the
// unbounded baseline: same stats, deep-equal trace, and byte-identical
// checkpoints — every mid-run one and the final one.
func checkEquivalent(t *testing.T, name string, base, got artifacts) {
	t.Helper()
	if got.stats != base.stats {
		t.Errorf("%s: stats diverged\n got %+v\nwant %+v", name, got.stats, base.stats)
	}
	if !reflect.DeepEqual(got.tr, base.tr) {
		t.Errorf("%s: trace diverged (%d/%d samples, %d/%d events)",
			name, len(got.tr.Samples), len(base.tr.Samples), len(got.tr.Events), len(base.tr.Events))
	}
	if len(got.mids) != len(base.mids) {
		t.Errorf("%s: %d mid-run checkpoints, want %d", name, len(got.mids), len(base.mids))
	} else {
		for i := range got.mids {
			if !bytes.Equal(got.mids[i], base.mids[i]) {
				t.Errorf("%s: mid-run checkpoint %d diverged (%d bytes vs %d)",
					name, i, len(got.mids[i]), len(base.mids[i]))
			}
		}
	}
	if !bytes.Equal(got.final, base.final) {
		t.Errorf("%s: final checkpoint diverged (%d bytes vs %d)", name, len(got.final), len(base.final))
	}
}

// TestSpillEquivalence is the subsystem's core contract: across all six
// Table 1 schemes on both domains, a run under a tight budget (a few
// nodes per PE, forcing constant eviction and fault traffic) and a mid
// budget (occasional spill) produces exactly the outputs of an unbounded
// run.  The tight synthetic configuration must also demonstrate real
// pressure — at least 1000 evictions — so the identity is not vacuous.
func TestSpillEquivalence(t *testing.T) {
	for _, label := range simd.Table1Labels(0.85) {
		t.Run("synthetic/"+label, func(t *testing.T) {
			const p = 256
			tree := synthetic.New(120000, 42)
			nodeBytes := int64(wire.NodeSize[synthetic.Node](wire.SyntheticCodec{}, tree.Root()))
			base := runBudgeted[synthetic.Node](t, tree, wire.SyntheticCodec{}, label, p, 0)
			if base.stats.W != 120000 {
				t.Fatalf("synthetic tree W=%d, want exactly 120000", base.stats.W)
			}
			tight := runBudgeted[synthetic.Node](t, tree, wire.SyntheticCodec{}, label, p, nodeBytes*p*3)
			checkEquivalent(t, "tight", base, tight)
			if tight.spill.Evictions < 1000 {
				t.Errorf("tight budget evicted only %d segments, want >= 1000 (budget not tight enough to prove anything)",
					tight.spill.Evictions)
			}
			if tight.spill.Faults == 0 || tight.spill.BytesRead == 0 {
				t.Errorf("tight budget faulted %d segments (%d bytes read); the restore path went unexercised",
					tight.spill.Faults, tight.spill.BytesRead)
			}
			mid := runBudgeted[synthetic.Node](t, tree, wire.SyntheticCodec{}, label, p, nodeBytes*p*16)
			checkEquivalent(t, "mid", base, mid)
		})
		t.Run("puzzle/"+label, func(t *testing.T) {
			const p = 32
			inst := puzzle.Scramble(7, 30)
			dom := puzzle.NewDomain(inst)
			bound, _ := search.FinalIterationBound(dom)
			nodeBytes := int64(wire.NodeSize[puzzle.Node](wire.PuzzleCodec{}, puzzle.Goal()))
			run := func(budget int64) artifacts {
				return runBudgeted[puzzle.Node](t, search.NewBounded(dom, bound), wire.PuzzleCodec{}, label, p, budget)
			}
			base := run(0)
			if base.stats.Goals == 0 {
				t.Fatal("puzzle run found no goal at the final iteration bound")
			}
			tight := run(nodeBytes * p) // one node per PE: constant pressure
			checkEquivalent(t, "tight", base, tight)
			if tight.spill.Evictions == 0 {
				t.Error("tight puzzle budget caused no evictions; the sweep never engaged")
			}
			mid := run(nodeBytes * p * 3)
			checkEquivalent(t, "mid", base, mid)
		})
	}
}

// TestSpillBudgetRequiresSpiller pins the fail-closed contract: a machine
// given a budget but no residency manager refuses to run rather than
// silently running unbounded.
func TestSpillBudgetRequiresSpiller(t *testing.T) {
	sch, err := simd.ParseScheme[synthetic.Node]("GP-DK")
	if err != nil {
		t.Fatal(err)
	}
	m, err := simd.NewMachine[synthetic.Node](synthetic.New(100, 1), sch, simd.Options{P: 8, MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunContext(context.Background()); err == nil {
		t.Fatal("RunContext with MemBudget but no spiller succeeded, want error")
	}
}

// TestSpillStatsAccounting sanity-checks the manager's counters on one
// heavy run: write and read volumes match the eviction/fault traffic, no
// segments leak past the end of the run's sweeps, and the peak resident
// count respects the configured budget's eviction goal.
func TestSpillStatsAccounting(t *testing.T) {
	tree := synthetic.New(20000, 42)
	codec := wire.SyntheticCodec{}
	nodeBytes := int64(wire.NodeSize[synthetic.Node](codec, tree.Root()))
	const p = 256
	sch, err := simd.ParseScheme[synthetic.Node]("GP-DK")
	if err != nil {
		t.Fatal(err)
	}
	m, err := simd.NewMachine[synthetic.Node](tree, sch, simd.Options{P: p, MemBudget: nodeBytes * p * 3})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := spill.NewManager[synthetic.Node](codec, spill.Config{
		Dir: t.TempDir(), MemBudget: nodeBytes * p * 3, NodeBytes: int(nodeBytes),
	})
	if err != nil {
		t.Fatal(err)
	}
	m.SetSpiller(mgr)
	if _, err := m.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	if st.Evictions == 0 || st.Faults == 0 {
		t.Fatalf("expected spill traffic, got %+v", st)
	}
	if st.Faults > st.Evictions {
		t.Errorf("faulted %d segments but only %d were ever evicted", st.Faults, st.Evictions)
	}
	if st.BytesWritten == 0 || st.BytesRead > st.BytesWritten {
		t.Errorf("read %d bytes but wrote %d; reads must be a subset of writes", st.BytesRead, st.BytesWritten)
	}
	if st.PeakResident == 0 {
		t.Error("peak resident count never recorded")
	}
}

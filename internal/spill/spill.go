// Package spill bounds the resident memory of a lock-step search by
// evicting the coldest stack levels to disk and restoring them on demand.
//
// The paper's schemes assume every PE's whole DFS stack fits in PE
// memory, which caps the largest search a node can run at RAM.  Related
// work on space-bounded combinatorial search (Pietracaprina et al.,
// "Space-Efficient Parallel Algorithms for Combinatorial Search
// Problems") shows bounded memory can be traded for modest extra work
// without losing correctness; this package applies the idea to the
// engine's arena: the bottom-of-stack level windows are cold — only
// bottom-node donation ever touches them, and in depth-first order they
// are the last work a PE will reach — so they spill first, as versioned
// on-disk segment files, and fault back in at cycle boundaries when a
// pop runs out of resident work or a transfer needs the whole stack.
//
// Determinism is the design constraint, not an afterthought.  Every
// evict/restore decision is a pure function of the global schedule —
// cycle number, per-PE resident occupancy, and the configured budget —
// never of timing, map order or allocator behaviour.  Eviction keeps the
// quantities the schedule observes (total stack sizes, the has-work and
// can-split bitsets, the trigger ledger) bit-identical, so schedules,
// traces, checkpoints and steal frames are byte-identical with spill
// enabled or disabled; internal/spill's equivalence tests enforce this
// across every Table 1 scheme.
//
// Crash-recovery contract: segment files are reconstructible cache
// state, not durable state.  Checkpoints reabsorb spilled levels before
// encoding (the machine faults everything in at snapshot boundaries), so
// a spooled SCKP file is always self-contained; after a crash the job
// resumes from its checkpoint and NewManager wipes whatever segments the
// dead run left behind.
package spill

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"simdtree/internal/stack"
	"simdtree/internal/wire"
)

// DefaultKeepLevels is the number of resident levels an eviction leaves
// in memory: the top of the stack (popped every cycle) and one level of
// slack so a pop that drains the top level does not fault immediately.
const DefaultKeepLevels = 2

// Config configures a Manager.
type Config struct {
	// Dir is the segment directory.  It is created if missing, and any
	// *.sspl files already in it (a crashed run's leftovers) are removed:
	// segments are cache, the checkpoint spool is the source of truth.
	Dir string
	// MemBudget is the resident-node budget in bytes; at most
	// MemBudget/NodeBytes nodes stay in memory across all PEs.  Zero or
	// negative disables eviction (the manager still restores anything a
	// snapshot restore left on disk).
	MemBudget int64
	// NodeBytes is the encoded size of one node (wire.NodeSize of the
	// root), the deterministic per-node accounting unit.  It must be
	// positive when MemBudget is.
	NodeBytes int
	// KeepLevels is the number of resident levels an eviction keeps;
	// 0 selects DefaultKeepLevels.
	KeepLevels int
}

// Stats counts the manager's disk traffic.  They are deliberately kept
// out of metrics.Stats: the schedule statistics must be byte-identical
// with spill on or off, so residency activity reports on the side.
type Stats struct {
	// Evictions is the number of segments written.
	Evictions int64
	// Faults is the number of segments restored.
	Faults int64
	// BytesWritten and BytesRead total the segment file traffic.
	BytesWritten int64
	BytesRead    int64
	// SegmentsLive is the number of segment files currently on disk.
	SegmentsLive int
	// PeakResident is the largest resident-node total observed at a
	// sweep boundary.
	PeakResident int
}

// segRef is one on-disk segment: the bookkeeping needed to restore it
// and to verify the restore matches what was evicted.
type segRef struct {
	seq    uint64
	nodes  int
	levels int
}

// Manager owns the segment store of one machine: a per-PE LIFO of
// evicted bottom-level segments, the deterministic eviction policy, and
// the fault paths the engine calls at cycle boundaries.  It implements
// simd.Spiller.  A Manager is not safe for concurrent use; the engine
// calls it only from the sequential sections of the run loop.
type Manager[S any] struct {
	codec       wire.Codec[S]
	dir         string
	budgetNodes int
	keep        int

	seq   uint64
	segs  [][]segRef // per-PE LIFO, newest last
	live  int
	stats Stats
}

// NewManager builds a segment store in cfg.Dir, wiping stale segments
// from a previous incarnation of the job.
func NewManager[S any](c wire.Codec[S], cfg Config) (*Manager[S], error) {
	if c == nil {
		return nil, errors.New("spill: nil codec")
	}
	if cfg.MemBudget > 0 && cfg.NodeBytes <= 0 {
		return nil, errors.New("spill: a memory budget needs a positive NodeBytes")
	}
	if cfg.Dir == "" {
		return nil, errors.New("spill: empty segment directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	if err := wipeSegments(cfg.Dir); err != nil {
		return nil, err
	}
	keep := cfg.KeepLevels
	if keep <= 0 {
		keep = DefaultKeepLevels
	}
	budget := 0
	if cfg.MemBudget > 0 {
		budget = int(cfg.MemBudget / int64(cfg.NodeBytes))
		if budget < 1 {
			budget = 1
		}
	}
	return &Manager[S]{codec: c, dir: cfg.Dir, budgetNodes: budget, keep: keep}, nil
}

// wipeSegments removes every *.sspl file under dir — the crash-recovery
// step: a dead run's segments describe arena state that no longer
// exists, and the resumed run rebuilds its own.
func wipeSegments(dir string) error {
	names, err := filepath.Glob(filepath.Join(dir, "*.sspl"))
	if err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	for _, name := range names {
		if err := os.Remove(name); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("spill: %w", err)
		}
	}
	return nil
}

// Dir returns the segment directory.
func (m *Manager[S]) Dir() string { return m.dir }

// BudgetNodes returns the resident-node budget (0 when eviction is
// disabled).
func (m *Manager[S]) BudgetNodes() int { return m.budgetNodes }

// Stats returns the cumulative disk-traffic counters.
func (m *Manager[S]) Stats() Stats {
	st := m.stats
	st.SegmentsLive = m.live
	return st
}

// segPath names segment seq of PE pe.  The sequence number is globally
// unique within the run, so names never collide.
func (m *Manager[S]) segPath(seq uint64, pe int) string {
	return filepath.Join(m.dir, fmt.Sprintf("seg-%08d-pe%d.sspl", seq, pe))
}

// ensure sizes the per-PE bookkeeping to p PEs.
func (m *Manager[S]) ensure(p int) {
	if len(m.segs) < p {
		segs := make([][]segRef, p)
		copy(segs, m.segs)
		m.segs = segs
	}
}

// Barrier restores enough work for the next expansion cycle: every PE
// that still has evicted levels but no resident node gets its newest
// segment faulted back in, so the one pop the cycle performs on it finds
// the true top of the stack.  It runs at cycle boundaries, before the
// cycle, and is a no-op (one integer compare) when nothing is spilled.
//
// Deliberately not a lint hot-path root: the steady-state fast paths
// (live == 0, every PE resident) allocate nothing, and the engine's bench
// gate enforces that; the eviction and fault event paths behind them do
// disk I/O and allocate by design.
func (m *Manager[S]) Barrier(a *stack.Arena[S]) error {
	if m.live == 0 {
		return nil
	}
	for pe := range m.segs {
		if len(m.segs[pe]) == 0 {
			continue
		}
		if a.Ghost(pe) == 0 {
			// The PE was cleared or reinstalled since the eviction; its
			// segments describe state that no longer exists.
			m.discard(pe)
			continue
		}
		if a.Resident(pe) == 0 {
			if err := m.restoreNewest(a, pe); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sweep enforces the budget: while the resident-node total exceeds it,
// the PE with the most resident nodes (ties to the lowest index — a pure
// function of the schedule) has all but its top KeepLevels levels
// evicted as one segment.  It runs at cycle boundaries, after expansion
// and any balancing phase; when every PE is already at its keep floor
// the arena stays over budget rather than stalling the search.
//
// Not a lint hot-path root for the same reason as Barrier: the per-cycle
// scan is allocation-free, the evictions behind it allocate by design.
func (m *Manager[S]) Sweep(a *stack.Arena[S]) error {
	if m.budgetNodes <= 0 {
		return nil
	}
	p := a.P()
	m.ensure(p)
	total := 0
	for pe := 0; pe < p; pe++ {
		total += a.Resident(pe)
	}
	if total > m.stats.PeakResident {
		m.stats.PeakResident = total
	}
	for total > m.budgetNodes {
		victim, best := -1, 0
		for pe := 0; pe < p; pe++ {
			if a.ResidentDepth(pe) > m.keep && a.Resident(pe) > best {
				victim, best = pe, a.Resident(pe)
			}
		}
		if victim < 0 {
			return nil
		}
		n, err := m.evict(a, victim)
		if err != nil {
			return err
		}
		total -= n
	}
	return nil
}

// FaultAll restores every evicted segment of PE pe, newest first, so the
// whole stack is resident — the precondition for bottom removal, stack
// splits, donation and serialisation.
func (m *Manager[S]) FaultAll(a *stack.Arena[S], pe int) error {
	if pe >= len(m.segs) || len(m.segs[pe]) == 0 {
		return nil
	}
	if a.Ghost(pe) == 0 {
		m.discard(pe)
		return nil
	}
	for len(m.segs[pe]) > 0 {
		if err := m.restoreNewest(a, pe); err != nil {
			return err
		}
	}
	if g := a.Ghost(pe); g != 0 {
		return fmt.Errorf("spill: PE %d still owes %d ghost nodes after full restore: %w", pe, g, ErrCorrupt)
	}
	return nil
}

// Reset discards every segment — the machine's state was replaced
// wholesale (a snapshot restore), so nothing on disk describes it any
// more.  File removal is best-effort; a leftover file is wiped by the
// next NewManager over the same directory.
func (m *Manager[S]) Reset() error {
	for pe := range m.segs {
		m.discard(pe)
	}
	return nil
}

// discard drops PE pe's segments without restoring them.
func (m *Manager[S]) discard(pe int) {
	for _, ref := range m.segs[pe] {
		_ = os.Remove(m.segPath(ref.seq, pe)) //lint:allow errdrop a leftover file is wiped by the next NewManager
	}
	m.live -= len(m.segs[pe])
	m.segs[pe] = m.segs[pe][:0]
}

// evict writes PE pe's bottom levels (all but the top keep) as one
// segment file and drops them from the arena.  It returns the number of
// nodes moved out of memory.
func (m *Manager[S]) evict(a *stack.Arena[S], pe int) (int, error) {
	k := a.ResidentDepth(pe) - m.keep
	m.seq++
	bp := wire.GetBuf()
	b := AppendSegment((*bp)[:0], m.codec, a, pe, m.seq, k)
	err := os.WriteFile(m.segPath(m.seq, pe), b, 0o644)
	n := len(b)
	*bp = b
	wire.PutBuf(bp)
	if err != nil {
		return 0, fmt.Errorf("spill: %w", err)
	}
	nodes := a.DropBottom(pe, k)
	m.segs[pe] = append(m.segs[pe], segRef{seq: m.seq, nodes: nodes, levels: k})
	m.live++
	m.stats.Evictions++
	m.stats.BytesWritten += int64(n)
	return nodes, nil
}

// restoreNewest faults PE pe's most recent segment back in: the levels
// directly below the resident window, by LIFO construction.  The decoded
// contents are verified against the eviction bookkeeping before they
// touch the arena, and the file is deleted after a successful restore.
func (m *Manager[S]) restoreNewest(a *stack.Arena[S], pe int) error {
	refs := m.segs[pe]
	ref := refs[len(refs)-1]
	path := m.segPath(ref.seq, pe)
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	gotPE, gotSeq, s, err := DecodeSegment(m.codec, b)
	if err != nil {
		return fmt.Errorf("spill: segment %s: %w", filepath.Base(path), err)
	}
	if gotPE != pe || gotSeq != ref.seq {
		return fmt.Errorf("spill: segment %s is for PE %d seq %d, expected PE %d seq %d: %w",
			filepath.Base(path), gotPE, gotSeq, pe, ref.seq, ErrCorrupt)
	}
	if s.Size() != ref.nodes || s.Depth() != ref.levels {
		return fmt.Errorf("spill: segment %s holds %d nodes in %d levels, evicted %d in %d: %w",
			filepath.Base(path), s.Size(), s.Depth(), ref.nodes, ref.levels, ErrCorrupt)
	}
	a.PrependStack(pe, s)
	m.segs[pe] = refs[:len(refs)-1]
	m.live--
	m.stats.Faults++
	m.stats.BytesRead += int64(len(b))
	_ = os.Remove(path) //lint:allow errdrop the segment was fully restored; a leftover file is wiped at the next NewManager
	return nil
}

package spill

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"simdtree/internal/stack"
	"simdtree/internal/synthetic"
	"simdtree/internal/wire"
)

var update = flag.Bool("update", false, "regenerate golden segment files")

const goldenPath = "testdata/golden_v1.sspl"

// sampleArena builds the deterministic arena every format test encodes:
// PE 1 holds four levels of synthetic nodes with distinct budgets/seeds.
func sampleArena() *stack.Arena[synthetic.Node] {
	a := stack.NewArena[synthetic.Node](4)
	a.PushLevel(1, []synthetic.Node{{Budget: 11, Seed: 1}, {Budget: 7, Seed: 2}, {Budget: 300, Seed: 3}})
	a.PushLevel(1, []synthetic.Node{{Budget: 5, Seed: 4}})
	a.PushLevel(1, []synthetic.Node{{Budget: 2, Seed: 5}, {Budget: 1, Seed: 6}})
	a.PushLevel(1, []synthetic.Node{{Budget: 9, Seed: 7}, {Budget: 128, Seed: 8}})
	return a
}

func encodeSample() []byte {
	return AppendSegment(nil, wire.SyntheticCodec{}, sampleArena(), 1, 42, 3)
}

// TestSegmentRoundTrip checks that a segment decodes to exactly the
// levels it framed, and that re-encoding the decoded levels from a fresh
// arena reproduces the original bytes — the canonical-encoding property
// restoreNewest's verification relies on.
func TestSegmentRoundTrip(t *testing.T) {
	codec := wire.SyntheticCodec{}
	b := encodeSample()
	pe, seq, s, err := DecodeSegment(codec, b)
	if err != nil {
		t.Fatal(err)
	}
	if pe != 1 || seq != 42 {
		t.Fatalf("decoded pe=%d seq=%d, want 1, 42", pe, seq)
	}
	if s.Size() != 6 || s.Depth() != 3 {
		t.Fatalf("decoded %d nodes in %d levels, want 6 in 3", s.Size(), s.Depth())
	}
	a2 := stack.NewArena[synthetic.Node](2)
	a2.InstallFromStack(1, s)
	re := AppendSegment(nil, codec, a2, 1, 42, 3)
	if !bytes.Equal(re, b) {
		t.Fatalf("re-encode not canonical:\n in %x\nout %x", b, re)
	}
}

// reseal mutates the body of a valid segment and refreshes the CRC, so
// the mutation is tested on its own rather than shadowed by ErrChecksum.
func reseal(valid []byte, mutate func(body []byte) []byte) []byte {
	body := append([]byte(nil), valid[:len(valid)-crc32.Size]...)
	body = mutate(body)
	return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

// TestDecodeSegmentErrors exercises every classified failure: each
// malformed input maps to its sentinel, never to a panic.
func TestDecodeSegmentErrors(t *testing.T) {
	codec := wire.SyntheticCodec{}
	valid := encodeSample()
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"magic only", []byte(Magic), ErrTruncated},
		{"bad magic", append([]byte("NOPE"), valid[4:]...), ErrBadMagic},
		{"bad version", reseal(valid, func(b []byte) []byte { b[len(Magic)] = 0x7F; return b }), ErrVersion},
		{"crc clipped", valid[:len(valid)-1], ErrChecksum},
		{"bit flip stale crc", reseal(valid, func(b []byte) []byte { return b })[:len(valid)-2], ErrChecksum},
		{"trailing byte", reseal(valid, func(b []byte) []byte { return append(b, 0) }), ErrCorrupt},
		{"zero level count", reseal(valid, func(b []byte) []byte { b[len(Magic)+3] = 0; return b }), ErrCorrupt},
		{"level count beyond body", reseal(valid, func(b []byte) []byte { b[len(Magic)+3] = 0x7F; return b }), ErrCorrupt},
		{"truncated mid node", reseal(valid, func(b []byte) []byte { return b[:len(b)-3] }), ErrCorrupt},
		{"non-minimal pe", reseal(valid, func(b []byte) []byte {
			// pe 1 re-encoded as the two-byte 0x81 0x00.
			out := append([]byte(nil), b[:len(Magic)+1]...)
			out = append(out, 0x81, 0x00)
			return append(out, b[len(Magic)+2:]...)
		}), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := DecodeSegment(codec, tc.in)
			if !errors.Is(err, tc.want) {
				t.Fatalf("DecodeSegment = %v, want %v", err, tc.want)
			}
		})
	}
	// A bit flip with a stale CRC is caught by the checksum, whichever
	// byte it hits.
	for i := len(Magic) + 1; i < len(valid)-4; i++ {
		c := append([]byte(nil), valid...)
		c[i] ^= 0x10
		if _, _, _, err := DecodeSegment(codec, c); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: got %v, want ErrChecksum", i, err)
		}
	}
}

// TestGoldenCompatibility pins the v1 byte layout, mirroring the
// checkpoint format's golden test: any layout change must come with a
// Version bump, and old-version files must be rejected cleanly.
// Regenerate with `go test ./internal/spill -run Golden -update`.
func TestGoldenCompatibility(t *testing.T) {
	got := encodeSample()
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	const versionOff = len(Magic)
	if bytes.Equal(got, want) {
		pe, seq, s, err := DecodeSegment(wire.SyntheticCodec{}, want)
		if err != nil {
			t.Fatalf("decoding golden file: %v", err)
		}
		a := stack.NewArena[synthetic.Node](pe + 1)
		a.InstallFromStack(pe, s)
		if re := AppendSegment(nil, wire.SyntheticCodec{}, a, pe, seq, s.Depth()); !bytes.Equal(re, want) {
			t.Error("golden file does not re-encode byte-identically")
		}
		return
	}
	if got[versionOff] == want[versionOff] {
		t.Fatalf("segment layout changed but Version is still %d; bump Version, keep decoding v%d, and regenerate the golden file with -update",
			Version, want[versionOff])
	}
	if _, _, _, err := DecodeSegment(wire.SyntheticCodec{}, want); !errors.Is(err, ErrVersion) {
		t.Fatalf("old-version golden file decodes as %v, want ErrVersion", err)
	}
	t.Logf("note: Version bumped to %d; regenerate %s with -update once the new layout settles", Version, goldenPath)
}

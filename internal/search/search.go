// Package search defines the problem abstraction shared by the serial and
// SIMD-parallel tree searches: a tree is specified by a root node and a
// successor-generator function (Section 2 of the paper), optionally with an
// f = g + h cost estimate enabling cost-bounded search and IDA*.
//
// The serial depth-first search here provides the ground-truth problem size
// W (the number of nodes the best sequential algorithm expands, Section
// 3.1) against which parallel efficiency is computed.  Both serial and
// parallel searches run cost-bounded iterations to exhaustion — "find all
// the solutions of the puzzle up to a given tree depth" — which makes the
// serial and parallel node counts identical by construction and avoids the
// superlinear-speedup anomalies the paper excludes from its analysis.
package search

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
)

// Domain describes a finite tree to be searched exhaustively.  Expand must
// be safe for concurrent use by multiple goroutines; node values are plain
// data.
type Domain[S any] interface {
	// Root returns the root node of the tree.
	Root() S
	// Expand appends the successors of s to buf and returns the extended
	// slice.  Any pruning (heuristics, cost bounds) happens here.
	Expand(s S, buf []S) []S
	// Goal reports whether s is a goal node.
	Goal(s S) bool
}

// CostDomain additionally exposes an admissible cost estimate, enabling
// cost-bounded search and iterative deepening.
type CostDomain[S any] interface {
	Domain[S]
	// F returns the f = g + h lower bound on the cost of any solution
	// through s.
	F(s S) int
}

// Bounded adapts a CostDomain to the cost-bounded tree IDA* searches in a
// single iteration: successors with F greater than Bound are pruned, and
// the smallest pruned F is tracked (atomically, so a SIMD machine's worker
// goroutines may share one Bounded) as the bound for the next iteration.
type Bounded[S any] struct {
	D     CostDomain[S]
	Bound int
	next  atomic.Int64
}

// NewBounded returns a cost-bounded view of d.
func NewBounded[S any](d CostDomain[S], bound int) *Bounded[S] {
	b := &Bounded[S]{D: d, Bound: bound}
	b.next.Store(math.MaxInt64)
	return b
}

// Root implements Domain.
func (b *Bounded[S]) Root() S { return b.D.Root() }

// Goal implements Domain; only nodes within the bound are generated, so
// the underlying goal test applies unchanged.
func (b *Bounded[S]) Goal(s S) bool { return b.D.Goal(s) }

// Expand implements Domain, pruning successors beyond the bound and
// recording the minimum pruned f-value.
func (b *Bounded[S]) Expand(s S, buf []S) []S {
	start := len(buf)
	buf = b.D.Expand(s, buf)
	kept := start
	for i := start; i < len(buf); i++ {
		if f := b.D.F(buf[i]); f > b.Bound {
			b.relaxNext(int64(f))
			continue
		}
		buf[kept] = buf[i]
		kept++
	}
	return buf[:kept]
}

// relaxNext lowers the recorded next bound to f if f is smaller.
func (b *Bounded[S]) relaxNext(f int64) {
	for {
		cur := b.next.Load()
		if f >= cur {
			return
		}
		if b.next.CompareAndSwap(cur, f) {
			return
		}
	}
}

// NextBound returns the smallest f-value that was pruned during the
// iteration, i.e. the cost bound for the next IDA* iteration, and whether
// any node was pruned at all.
func (b *Bounded[S]) NextBound() (int, bool) {
	v := b.next.Load()
	if v == math.MaxInt64 {
		return 0, false
	}
	return int(v), true
}

// Stateful is implemented by domains whose future behaviour depends on
// mutable state accumulated during the search — state that lives outside
// the DFS stacks and must therefore ride along in a checkpoint.  Bounded
// implements it: its smallest-pruned-f accumulator determines the next
// IDA* bound, and prunes recorded before a snapshot would otherwise be
// lost on restore.  Stateless domains (the workloads themselves) simply
// don't implement the interface.
type Stateful interface {
	// SaveState returns the domain's mutable state as a small opaque
	// payload.
	SaveState() []byte
	// RestoreState installs a payload produced by SaveState on an
	// identically configured domain.  It returns an error when the
	// payload is malformed or belongs to a differently configured domain.
	RestoreState([]byte) error
}

// SaveState implements Stateful: the configured bound (restore validates
// it, catching checkpoints applied to the wrong iteration) and the
// smallest pruned f-value so far.
func (b *Bounded[S]) SaveState() []byte {
	buf := binary.AppendVarint(nil, int64(b.Bound))
	return binary.AppendVarint(buf, b.next.Load())
}

// RestoreState implements Stateful.
func (b *Bounded[S]) RestoreState(p []byte) error {
	bound, n := binary.Varint(p)
	if n <= 0 {
		return fmt.Errorf("search: truncated bounded-domain state")
	}
	next, m := binary.Varint(p[n:])
	if m <= 0 || n+m != len(p) {
		return fmt.Errorf("search: malformed bounded-domain state")
	}
	if int(bound) != b.Bound {
		return fmt.Errorf("search: bounded-domain state is for bound %d, domain has bound %d", bound, b.Bound)
	}
	if next < 0 {
		return fmt.Errorf("search: negative next bound %d in bounded-domain state", next)
	}
	b.next.Store(next)
	return nil
}

// StateMerger is implemented by stateful domains whose state from two
// shards of one logical search can be folded together.  A distributed run
// splits a machine's PE range across nodes; each shard accumulates domain
// state independently, and merging every shard's payload reproduces the
// state a single machine would hold.
type StateMerger interface {
	Stateful
	// MergeState folds a peer shard's SaveState payload into this
	// domain's state.  It returns an error when the payload is malformed
	// or belongs to a differently configured domain.
	MergeState([]byte) error
}

// MergeState implements StateMerger: the peer's smallest pruned f-value is
// folded in with a min, which is exactly how a single shared accumulator
// would have ordered the same prunes.
func (b *Bounded[S]) MergeState(p []byte) error {
	bound, n := binary.Varint(p)
	if n <= 0 {
		return fmt.Errorf("search: truncated bounded-domain state")
	}
	next, m := binary.Varint(p[n:])
	if m <= 0 || n+m != len(p) {
		return fmt.Errorf("search: malformed bounded-domain state")
	}
	if int(bound) != b.Bound {
		return fmt.Errorf("search: bounded-domain state is for bound %d, domain has bound %d", bound, b.Bound)
	}
	if next < 0 {
		return fmt.Errorf("search: negative next bound %d in bounded-domain state", next)
	}
	b.relaxNext(next)
	return nil
}

// Result summarises a serial search.
type Result struct {
	Expanded int64 // nodes expanded (the problem size W)
	Goals    int64 // goal nodes found
	MaxDepth int   // deepest stack observed, in levels
	Bound    int   // final cost bound (IDA* only)
	Iters    int   // IDA* iterations performed (IDA* only)
}

// DFS exhaustively searches d depth-first and returns the node and goal
// counts.  The domain must describe a finite tree.
func DFS[S any](d Domain[S]) Result {
	var res Result
	stk := []S{d.Root()}
	buf := make([]S, 0, 16)
	for len(stk) > 0 {
		if len(stk) > res.MaxDepth {
			res.MaxDepth = len(stk)
		}
		n := stk[len(stk)-1]
		stk = stk[:len(stk)-1]
		res.Expanded++
		if d.Goal(n) {
			res.Goals++
		}
		buf = d.Expand(n, buf[:0])
		stk = append(stk, buf...)
	}
	return res
}

// IDAStar runs iterative-deepening A* (Korf 1985) on d serially: repeated
// cost-bounded depth-first searches with the bound raised to the smallest
// pruned f-value, until an iteration finds a goal.  Each iteration runs to
// exhaustion, finding every solution of cost at most the bound.
// maxIters <= 0 means no iteration limit.
func IDAStar[S any](d CostDomain[S], maxIters int) Result {
	var total Result
	bound := d.F(d.Root())
	for iter := 0; maxIters <= 0 || iter < maxIters; iter++ {
		b := NewBounded(d, bound)
		r := DFS[S](b)
		total.Expanded += r.Expanded
		total.Goals += r.Goals
		total.Iters++
		total.Bound = bound
		if r.MaxDepth > total.MaxDepth {
			total.MaxDepth = r.MaxDepth
		}
		if r.Goals > 0 {
			return total
		}
		next, ok := b.NextBound()
		if !ok {
			return total // search space exhausted with no solution
		}
		bound = next
	}
	return total
}

// FinalIterationBound returns the IDA* cost bound of the iteration in
// which the first solution appears — the bound the paper's experiments
// search exhaustively — along with the number of nodes that final
// iteration expands.  It runs serial IDA* under the hood.
func FinalIterationBound[S any](d CostDomain[S]) (bound int, w int64) {
	r := IDAStar(d, 0)
	b := NewBounded(d, r.Bound)
	final := DFS[S](b)
	return r.Bound, final.Expanded
}

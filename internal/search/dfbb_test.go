package search

import (
	"math"
	"sync"
	"testing"
)

// pathOpt is a toy minimisation domain: a complete binary tree of fixed
// depth where each edge adds a deterministic cost; complete solutions are
// the leaves, and the lower bound is the accumulated cost (admissible:
// remaining edges only add cost).
type pathOpt struct {
	depth int
}

type pathNode struct {
	depth int
	id    uint32
	cost  int64
}

func (p pathOpt) Root() pathNode              { return pathNode{} }
func (p pathOpt) Complete(n pathNode) bool    { return n.depth == p.depth }
func (p pathOpt) Cost(n pathNode) int64       { return n.cost }
func (p pathOpt) LowerBound(n pathNode) int64 { return n.cost }

func (p pathOpt) Expand(n pathNode, buf []pathNode) []pathNode {
	if n.depth == p.depth {
		return buf
	}
	// Edge costs are a deterministic hash of (id, branch).
	for b := uint32(0); b < 2; b++ {
		id := n.id*2 + b
		edge := int64((id*2654435761)%97) + 1
		buf = append(buf, pathNode{depth: n.depth + 1, id: id, cost: n.cost + edge})
	}
	return buf
}

// bruteBest finds the optimum by full enumeration.
func bruteBest(p pathOpt) int64 {
	best := int64(math.MaxInt64)
	var walk func(n pathNode)
	walk = func(n pathNode) {
		if p.Complete(n) {
			if n.cost < best {
				best = n.cost
			}
			return
		}
		for _, c := range p.Expand(n, nil) {
			walk(c)
		}
	}
	walk(p.Root())
	return best
}

func TestOptimumMatchesBruteForce(t *testing.T) {
	for depth := 1; depth <= 10; depth++ {
		p := pathOpt{depth: depth}
		got, expanded, ok := Optimum[pathNode](p)
		if !ok {
			t.Fatalf("depth %d: no solution", depth)
		}
		want := bruteBest(p)
		if got != want {
			t.Errorf("depth %d: optimum %d, brute force %d", depth, got, want)
		}
		full := int64(1)<<(depth+1) - 1
		if expanded > full {
			t.Errorf("depth %d: expanded %d > full tree %d", depth, expanded, full)
		}
	}
}

// TestDFBBPrunes verifies bound pruning actually reduces work on a deep
// tree (the incumbent from the first descents prunes most of the rest).
func TestDFBBPrunes(t *testing.T) {
	p := pathOpt{depth: 14}
	_, expanded, _ := Optimum[pathNode](p)
	full := int64(1)<<15 - 1
	if expanded >= full {
		t.Errorf("DFBB expanded the whole tree (%d nodes); pruning is inert", expanded)
	}
}

func TestIncumbent(t *testing.T) {
	in := NewIncumbent()
	if in.Best() != math.MaxInt64 {
		t.Error("fresh incumbent should be +inf")
	}
	if !in.Offer(10) {
		t.Error("first offer rejected")
	}
	if in.Offer(10) || in.Offer(11) {
		t.Error("non-improving offer accepted")
	}
	if !in.Offer(9) || in.Best() != 9 {
		t.Error("improving offer mishandled")
	}
}

// TestIncumbentConcurrent hammers Offer from many goroutines; the final
// value must be the global minimum.
func TestIncumbentConcurrent(t *testing.T) {
	in := NewIncumbent()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1000; i > g; i-- {
				in.Offer(int64(i))
			}
		}(g)
	}
	wg.Wait()
	if in.Best() != 1 {
		t.Errorf("final incumbent %d, want 1", in.Best())
	}
}

// TestDFBBGoalSemantics: Goal returns true only for strict improvements,
// so duplicate-cost solutions are not double counted.
func TestDFBBGoalSemantics(t *testing.T) {
	b := NewDFBB[pathNode](pathOpt{depth: 3})
	leaf := pathNode{depth: 3, cost: 5}
	if !b.Goal(leaf) {
		t.Error("first solution not a goal")
	}
	if b.Goal(leaf) {
		t.Error("equal-cost solution counted again")
	}
	if !b.Goal(pathNode{depth: 3, cost: 4}) {
		t.Error("improvement not a goal")
	}
	if b.Goal(pathNode{depth: 2, cost: 0}) {
		t.Error("incomplete node treated as goal")
	}
}

// TestNoSolution: an optimisation domain whose tree has no complete
// solutions reports ok=false.
type deadEnd struct{ pathOpt }

func (deadEnd) Complete(pathNode) bool { return false }

func TestNoSolution(t *testing.T) {
	if _, _, ok := Optimum[pathNode](deadEnd{pathOpt{depth: 4}}); ok {
		t.Error("solution reported for a domain with none")
	}
}

package search

import (
	"sync"
	"testing"
)

// binTree is a complete binary tree of the given depth; leaves at maximum
// depth are goals.  It has 2^(depth+1)-1 nodes.
type binTree struct {
	depth int
}

type binNode struct {
	depth int
	id    int
}

func (t binTree) Root() binNode       { return binNode{} }
func (t binTree) Goal(n binNode) bool { return n.depth == t.depth }
func (t binTree) Expand(n binNode, buf []binNode) []binNode {
	if n.depth == t.depth {
		return buf
	}
	return append(buf,
		binNode{depth: n.depth + 1, id: n.id * 2},
		binNode{depth: n.depth + 1, id: n.id*2 + 1})
}

// costTree gives binTree a cost: f = depth.
type costTree struct{ binTree }

func (t costTree) F(n binNode) int { return n.depth }

func TestDFSCompleteBinaryTree(t *testing.T) {
	for depth := 0; depth <= 10; depth++ {
		r := DFS[binNode](binTree{depth: depth})
		wantNodes := int64(1)<<(depth+1) - 1
		wantGoals := int64(1) << depth
		if r.Expanded != wantNodes {
			t.Errorf("depth %d: expanded %d, want %d", depth, r.Expanded, wantNodes)
		}
		if r.Goals != wantGoals {
			t.Errorf("depth %d: goals %d, want %d", depth, r.Goals, wantGoals)
		}
	}
}

func TestDFSMaxDepth(t *testing.T) {
	r := DFS[binNode](binTree{depth: 5})
	if r.MaxDepth < 6 {
		t.Errorf("MaxDepth=%d, want >= 6 for a depth-5 tree", r.MaxDepth)
	}
}

func TestBoundedPrunes(t *testing.T) {
	full := binTree{depth: 6}
	b := NewBounded[binNode](costTree{full}, 3)
	r := DFS[binNode](b)
	// The bounded tree is the complete tree of depth 3.
	if want := int64(1)<<4 - 1; r.Expanded != want {
		t.Errorf("expanded %d, want %d", r.Expanded, want)
	}
	next, ok := b.NextBound()
	if !ok || next != 4 {
		t.Errorf("NextBound = %d,%v, want 4,true", next, ok)
	}
}

func TestBoundedNextBoundAbsentWhenNothingPruned(t *testing.T) {
	b := NewBounded[binNode](costTree{binTree{depth: 2}}, 100)
	DFS[binNode](b)
	if _, ok := b.NextBound(); ok {
		t.Error("NextBound should report false when nothing was pruned")
	}
}

// TestBoundedConcurrentNextBound exercises the atomic next-bound
// accumulator from many goroutines.
func TestBoundedConcurrentNextBound(t *testing.T) {
	b := NewBounded[binNode](costTree{binTree{depth: 12}}, 5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]binNode, 0, 2)
			stk := []binNode{b.Root()}
			for len(stk) > 0 {
				n := stk[len(stk)-1]
				stk = stk[:len(stk)-1]
				buf = b.Expand(n, buf[:0])
				stk = append(stk, buf...)
			}
		}()
	}
	wg.Wait()
	next, ok := b.NextBound()
	if !ok || next != 6 {
		t.Errorf("NextBound = %d,%v, want 6,true", next, ok)
	}
}

func TestIDAStarOnBinaryTree(t *testing.T) {
	// Goals live at depth 4 with f = 4: IDA* should iterate bounds
	// 0,1,2,3,4 and stop with goals found at bound 4.
	r := IDAStar[binNode](costTree{binTree{depth: 4}}, 0)
	if r.Bound != 4 {
		t.Errorf("final bound %d, want 4", r.Bound)
	}
	if r.Goals != 16 {
		t.Errorf("goals %d, want 16", r.Goals)
	}
	if r.Iters != 5 {
		t.Errorf("iterations %d, want 5", r.Iters)
	}
}

func TestIDAStarIterationLimit(t *testing.T) {
	r := IDAStar[binNode](costTree{binTree{depth: 10}}, 2)
	if r.Iters != 2 {
		t.Errorf("iterations %d, want 2 (limited)", r.Iters)
	}
	if r.Goals != 0 {
		t.Error("limited search should not have reached the goals")
	}
}

func TestFinalIterationBound(t *testing.T) {
	bound, w := FinalIterationBound[binNode](costTree{binTree{depth: 3}})
	if bound != 3 {
		t.Errorf("bound %d, want 3", bound)
	}
	if want := int64(1)<<4 - 1; w != want {
		t.Errorf("W = %d, want %d", w, want)
	}
}

// unsolvable is a domain with no goals at all; IDA* must terminate by
// exhaustion.
type unsolvable struct{ costTree }

func (unsolvable) Goal(binNode) bool { return false }

func TestIDAStarExhaustsUnsolvable(t *testing.T) {
	r := IDAStar[binNode](unsolvable{costTree{binTree{depth: 3}}}, 0)
	if r.Goals != 0 {
		t.Error("unsolvable domain produced goals")
	}
	if r.Bound != 3 {
		t.Errorf("final bound %d, want 3 (the deepest layer)", r.Bound)
	}
}

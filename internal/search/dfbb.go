package search

import (
	"math"
	"sync/atomic"
)

// OptimizationDomain describes a minimisation problem searched by
// depth-first branch-and-bound (DFBB), one of the depth-first tree search
// algorithms the paper names alongside IDA* and backtracking (Section 2).
// Costs are int64; maximisation problems negate their objective.
type OptimizationDomain[S any] interface {
	// Root returns the root of the branching tree.
	Root() S
	// Expand appends the successors of s to buf.  Bound-based pruning is
	// done by the DFBB adapter, not here.
	Expand(s S, buf []S) []S
	// Complete reports whether s is a complete solution.
	Complete(s S) bool
	// Cost returns the objective value of a complete solution.
	Cost(s S) int64
	// LowerBound returns an admissible lower bound on the cost of any
	// completion of s (for complete s it must equal Cost(s) or less).
	LowerBound(s S) int64
}

// Incumbent is the shared best-solution cost of a branch-and-bound run.
// It is updated atomically, so the SIMD machine's worker goroutines and
// the MIMD simulator can share one incumbent.
type Incumbent struct {
	best atomic.Int64
}

// NewIncumbent returns an incumbent initialised to +infinity.
func NewIncumbent() *Incumbent {
	in := &Incumbent{}
	in.best.Store(math.MaxInt64)
	return in
}

// Best returns the best (smallest) cost offered so far, or math.MaxInt64
// if none.
func (in *Incumbent) Best() int64 { return in.best.Load() }

// Offer lowers the incumbent to c if c improves on it, reporting whether
// it did.
func (in *Incumbent) Offer(c int64) bool {
	for {
		cur := in.best.Load()
		if c >= cur {
			return false
		}
		if in.best.CompareAndSwap(cur, c) {
			return true
		}
	}
}

// DFBB adapts an OptimizationDomain to the Domain interface: subtrees
// whose lower bound cannot improve on the shared incumbent are pruned,
// and complete solutions update the incumbent via the goal test.
//
// Because pruning power depends on how early good incumbents are found,
// the number of nodes DFBB expands depends on the exploration order: a
// parallel search may expand fewer nodes than the serial one
// (acceleration anomaly) or more (deceleration anomaly).  This is exactly
// the effect the paper excludes from its efficiency study (Section 3) and
// the reason its experiments use exhaustive bounded searches; the DFBB
// adapter exists to make those anomalies observable (see the anomalies
// experiment).
type DFBB[S any] struct {
	D OptimizationDomain[S]
	// In is the shared incumbent; NewDFBB initialises it.
	In *Incumbent
}

// NewDFBB returns a branch-and-bound view of d with a fresh incumbent.
func NewDFBB[S any](d OptimizationDomain[S]) *DFBB[S] {
	return &DFBB[S]{D: d, In: NewIncumbent()}
}

// Root implements Domain.
func (b *DFBB[S]) Root() S { return b.D.Root() }

// Goal implements Domain: complete solutions that improve the incumbent
// count as goals (and tighten the bound for everyone).
func (b *DFBB[S]) Goal(s S) bool {
	if !b.D.Complete(s) {
		return false
	}
	return b.In.Offer(b.D.Cost(s))
}

// Expand implements Domain with incumbent-based pruning.
func (b *DFBB[S]) Expand(s S, buf []S) []S {
	start := len(buf)
	buf = b.D.Expand(s, buf)
	best := b.In.Best()
	kept := start
	for i := start; i < len(buf); i++ {
		if b.D.LowerBound(buf[i]) >= best {
			continue
		}
		buf[kept] = buf[i]
		kept++
	}
	return buf[:kept]
}

// Optimum runs serial DFBB to completion and returns the optimal cost and
// the number of nodes expanded (the serial W, order-dependent).  ok is
// false when no complete solution exists.
func Optimum[S any](d OptimizationDomain[S]) (cost int64, expanded int64, ok bool) {
	b := NewDFBB(d)
	r := DFS[S](b)
	best := b.In.Best()
	return best, r.Expanded, best != math.MaxInt64
}

package traffic

import (
	"sort"
	"sync"

	"simdtree/internal/server"
)

// DRR is a deficit-round-robin fair scheduler over tenants, implementing
// server.Scheduler.  Each backlogged tenant holds a FIFO of its own jobs
// and a deficit counter; a rotating cursor visits tenants in arrival
// order, granting Quantum cost units per visit and dispatching head jobs
// while the credit lasts.
//
// With unit costs and the default quantum the dispatch order is an exact
// rotation — the paper's GP invariant (§4.1: the global pointer never
// re-picks a PE before wrapping past every candidate) with tenants in the
// role of the PEs: no backlogged tenant is served twice before every
// other backlogged tenant is served once.  With estimated costs the same
// rotation holds in cost units: a tenant whose head job is expensive
// banks credit across visits instead of being starved or favoured.
type DRR struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int
	quantum  float64
	size     int
	closed   bool

	tenants map[string]*tenantQueue
	ring    []string // backlogged tenants in arrival order
	cur     int      // rotation cursor into ring
	granted bool     // the tenant at cur has received its quantum for this visit

	served map[string]int64 // jobs dispatched per tenant, for /metrics
}

type tenantQueue struct {
	items   []server.SchedItem
	deficit float64
}

// NewDRR returns a DRR scheduler bounding the total backlog (all tenants
// together) at capacity items, with the given per-visit quantum in cost
// units.  A quantum <= 0 selects 1, which with unit-cost jobs yields the
// strict one-job-per-tenant-per-rotation schedule the tests pin down.
func NewDRR(capacity int, quantum float64) *DRR {
	if capacity < 1 {
		capacity = 1
	}
	if quantum <= 0 {
		quantum = 1
	}
	d := &DRR{
		capacity: capacity,
		quantum:  quantum,
		tenants:  make(map[string]*tenantQueue),
		served:   make(map[string]int64),
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// Push admits one item under its tenant, waking one blocked worker.
func (d *DRR) Push(item server.SchedItem) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.size >= d.capacity {
		return false
	}
	q := d.tenants[item.Tenant]
	if q == nil {
		q = &tenantQueue{}
		d.tenants[item.Tenant] = q
	}
	if len(q.items) == 0 {
		// (Re)joining tenants enter at the ring's tail with zero credit:
		// they wait for the cursor like everyone else.
		d.ring = append(d.ring, item.Tenant)
	}
	q.items = append(q.items, item)
	d.size++
	d.cond.Signal()
	return true
}

// Next blocks until a job is dispatchable or the scheduler is closed and
// drained.
//
//lint:allow ctxflow scheduler lifetime is bounded by Close; pool workers own the blocking wait
func (d *DRR) Next() (server.SchedItem, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.size > 0 {
			return d.popLocked(), true
		}
		if d.closed {
			return server.SchedItem{}, false
		}
		d.cond.Wait()
	}
}

// popLocked runs the DRR visit loop.  size > 0 implies the ring holds at
// least one tenant with queued work, so the loop terminates: every pass
// either dispatches, retires a drained tenant, or advances the cursor
// while growing some deficit by a full quantum.
func (d *DRR) popLocked() server.SchedItem {
	for {
		t := d.ring[d.cur]
		q := d.tenants[t]
		if len(q.items) == 0 {
			d.retireLocked(q)
			continue
		}
		if !d.granted {
			q.deficit += d.quantum
			d.granted = true
		}
		head := q.items[0]
		if q.deficit >= head.Cost {
			copy(q.items, q.items[1:])
			q.items = q.items[:len(q.items)-1]
			q.deficit -= head.Cost
			d.size--
			d.served[t]++
			if len(q.items) == 0 {
				d.retireLocked(q)
			}
			return head
		}
		// The head exceeds the remaining credit: the visit ends, the
		// credit carries over, the cursor moves on.
		d.advanceLocked()
	}
}

// retireLocked drops the tenant at the cursor from the ring.  Its deficit
// resets — an idle tenant must not bank credit — and the cursor now
// points at the successor, which has not been visited yet.
func (d *DRR) retireLocked(q *tenantQueue) {
	q.deficit = 0
	d.ring = append(d.ring[:d.cur], d.ring[d.cur+1:]...)
	if d.cur >= len(d.ring) {
		d.cur = 0
	}
	d.granted = false
}

func (d *DRR) advanceLocked() {
	d.cur = (d.cur + 1) % len(d.ring)
	d.granted = false
}

// Close stops admission; Next drains the backlog then reports ok=false.
func (d *DRR) Close() {
	d.mu.Lock()
	d.closed = true
	d.cond.Broadcast()
	d.mu.Unlock()
}

// Depth is the total backlog across tenants.
func (d *DRR) Depth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}

// TenantStat is one tenant's scheduler view for /metrics.
type TenantStat struct {
	Served  int64 `json:"served_total"`
	Backlog int   `json:"backlog"`
}

// Stats returns the per-tenant dispatch counters and current backlogs,
// keyed by tenant, for every tenant the scheduler has ever served or is
// currently holding.
func (d *DRR) Stats() map[string]TenantStat {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]TenantStat, len(d.served))
	for t, n := range d.served {
		out[t] = TenantStat{Served: n}
	}
	for t, q := range d.tenants {
		s := out[t]
		s.Backlog = len(q.items)
		out[t] = s
	}
	return out
}

// Tenants returns the known tenant labels in sorted order (stable output
// for logs and tests).
func (d *DRR) Tenants() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	seen := make(map[string]bool, len(d.served)+len(d.tenants))
	for t := range d.served {
		seen[t] = true
	}
	for t := range d.tenants {
		seen[t] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

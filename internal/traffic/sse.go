package traffic

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// handleEvents implements GET /v1/jobs/{id}/events: the job's progress
// stream (status transitions, engine liveness ticks, checkpoint writes)
// as Server-Sent Events.  Each event carries its sequence number as the
// SSE id, so a client that reconnects with Last-Event-ID resumes where
// its stream broke; comment heartbeats keep idle connections alive
// through proxies.  The stream ends after the terminal event, or when the
// client goes away.
func (f *Frontend) handleEvents(w http.ResponseWriter, r *http.Request) {
	h, ok := f.srv.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	after, err := lastEventID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	f.ctr.sseStreams.Add(1)
	if after > 0 {
		f.ctr.sseResumes.Add(1)
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	ctx := r.Context()
	heartbeat := time.NewTicker(f.cfg.HeartbeatEvery)
	defer heartbeat.Stop()
	for {
		events, wake := h.EventsSince(after)
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
				return
			}
			after = ev.Seq
			if ev.Terminal {
				_ = rc.Flush() //lint:allow errdrop the stream is over either way
				return
			}
		}
		if err := rc.Flush(); err != nil {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-wake:
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}

// lastEventID extracts the resume point: the standard Last-Event-ID
// header a reconnecting EventSource sends, or the ?last_event_id= query
// parameter for clients that cannot set headers.  0 streams from the
// beginning of the retained log.
func lastEventID(r *http.Request) (int64, error) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("last_event_id")
	}
	if raw == "" {
		return 0, nil
	}
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || id < 0 {
		return 0, fmt.Errorf("bad Last-Event-ID %q", raw)
	}
	return id, nil
}

package traffic

import (
	"fmt"
	"sync"
	"testing"

	"simdtree/internal/server"
)

// unit builds a unit-cost SchedItem for tenant t.
func unit(t string) server.SchedItem {
	return server.SchedItem{Tenant: t, Cost: 1}
}

// TestDRRRotationInvariant pins the scheduler's GP-rotation property
// (the paper's §4.1 invariant with tenants in the role of the PEs): with
// unit costs and a unit quantum, no backlogged tenant is dispatched
// twice before every other backlogged tenant has been dispatched once.
// The backlog is deliberately skewed — a fair-share scheduler must not
// let the heavy tenant's depth buy it extra turns.
func TestDRRRotationInvariant(t *testing.T) {
	d := NewDRR(128, 1)
	backlog := map[string]int{"heavy": 9, "medium": 5, "light": 2}
	// Interleave pushes so arrival order does not accidentally encode
	// the fair schedule.
	for i := 0; i < 9; i++ {
		for tenant, n := range map[string]int{"heavy": 9, "medium": 5, "light": 2} {
			if i < n {
				if !d.Push(unit(tenant)) {
					t.Fatalf("push %s/%d refused", tenant, i)
				}
			}
		}
	}
	total := 0
	for _, n := range backlog {
		total += n
	}

	window := map[string]bool{}
	resetWindow := func() {
		for tenant, n := range backlog {
			if n > 0 {
				window[tenant] = true
			}
		}
	}
	resetWindow()
	for i := 0; i < total; i++ {
		it, ok := d.Next()
		if !ok {
			t.Fatalf("dispatch %d: scheduler closed early", i)
		}
		if !window[it.Tenant] {
			t.Fatalf("dispatch %d: tenant %q served twice before the rotation wrapped past every backlogged tenant", i, it.Tenant)
		}
		delete(window, it.Tenant)
		backlog[it.Tenant]--
		if len(window) == 0 {
			resetWindow()
		}
	}
	if got := d.Depth(); got != 0 {
		t.Fatalf("backlog %d after draining, want 0", got)
	}
	st := d.Stats()
	if st["heavy"].Served != 9 || st["medium"].Served != 5 || st["light"].Served != 2 {
		t.Errorf("served counters %+v, want heavy=9 medium=5 light=2", st)
	}
}

// TestDRRDeficitCarry pins the weighted half of the policy: a tenant
// whose head job costs more than one quantum banks credit across visits
// instead of being starved (it still dispatches) or favoured (the cheap
// tenant gets proportionally more turns first).
func TestDRRDeficitCarry(t *testing.T) {
	d := NewDRR(16, 1)
	if !d.Push(server.SchedItem{Tenant: "wide", Cost: 3}) {
		t.Fatal("push wide refused")
	}
	for i := 0; i < 3; i++ {
		if !d.Push(unit("cheap")) {
			t.Fatal("push cheap refused")
		}
	}
	var order []string
	for i := 0; i < 4; i++ {
		it, ok := d.Next()
		if !ok {
			t.Fatalf("dispatch %d: scheduler closed early", i)
		}
		order = append(order, it.Tenant)
	}
	// Visits grant one credit each: cheap dispatches on every visit,
	// wide accumulates 1, 2, 3 and dispatches on its third visit —
	// after two cheap jobs, before the third.
	want := []string{"cheap", "cheap", "wide", "cheap"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
}

// TestDRRCapacityCloseDrain covers admission bounds and the drain
// contract: Close stops Push immediately but Next hands out the backlog
// before reporting closed.
func TestDRRCapacityCloseDrain(t *testing.T) {
	d := NewDRR(2, 1)
	if !d.Push(unit("a")) || !d.Push(unit("b")) {
		t.Fatal("pushes within capacity refused")
	}
	if d.Push(unit("c")) {
		t.Fatal("push beyond capacity accepted")
	}
	d.Close()
	if d.Push(unit("a")) {
		t.Fatal("push after Close accepted")
	}
	for i := 0; i < 2; i++ {
		if _, ok := d.Next(); !ok {
			t.Fatalf("drain dispatch %d: closed before the backlog emptied", i)
		}
	}
	if _, ok := d.Next(); ok {
		t.Fatal("Next returned an item from an empty closed scheduler")
	}
}

// TestDRRConcurrentDispatch runs producers and consumers together under
// the race detector and checks that no item is lost or duplicated: every
// tenant's pushes are dispatched exactly once.
func TestDRRConcurrentDispatch(t *testing.T) {
	const tenants, perTenant = 4, 50
	d := NewDRR(tenants*perTenant, 1)
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				if !d.Push(unit(tenant)) {
					t.Errorf("push %s/%d refused below capacity", tenant, i)
					return
				}
			}
		}(fmt.Sprintf("t%d", ti))
	}
	got := make(map[string]int)
	var mu sync.Mutex
	var cg sync.WaitGroup
	for w := 0; w < 3; w++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				it, ok := d.Next()
				if !ok {
					return
				}
				mu.Lock()
				got[it.Tenant]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Producers done and everything fits in capacity: Close drains the
	// backlog through Next before reporting closed.
	d.Close()
	cg.Wait()
	for ti := 0; ti < tenants; ti++ {
		tenant := fmt.Sprintf("t%d", ti)
		if got[tenant] != perTenant {
			t.Errorf("tenant %s dispatched %d jobs, want %d", tenant, got[tenant], perTenant)
		}
	}
}

// Package traffic is the service's traffic-management layer, wrapped
// around internal/server the way the paper's load-balancing machinery is
// wrapped around raw node expansion: the search engine stays oblivious
// while an outer mechanism decides who runs, when, and how often the same
// work is paid for.
//
// It contributes four things, each grounded in a property the lower
// layers already guarantee:
//
//   - Single-flight collapsing.  The engine is deterministic and results
//     are cached under the canonical-spec SHA-256 key, so N identical
//     in-flight submissions need exactly one run.  The flight table keys
//     on the cache key and fans the one rendered response out to every
//     subscriber, byte for byte.
//
//   - Per-tenant fair scheduling.  A deficit-round-robin scheduler
//     replaces the server's global FIFO via server.Config.Scheduler.  The
//     rotation invariant is the paper's GP pointer rule (§4.1) lifted one
//     level: no backlogged tenant is served twice before every other
//     backlogged tenant is served once.
//
//   - Batch admission and progress streaming.  POST /v1/jobs:batch admits
//     up to MaxBatch specs with per-item verdicts; GET /v1/jobs/{id}/events
//     streams the job's status/progress/checkpoint events as SSE with
//     heartbeats and Last-Event-ID resumption.
//
//   - Cost-weighted admission.  POST /v1/estimate prices a spec with the
//     paper's efficiency model (equations 12/15/18) before anything runs;
//     the same estimate weights the DRR dequeue so a tenant's quantum
//     buys predicted node expansions, not request counts.
package traffic

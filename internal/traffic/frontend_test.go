package traffic

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"simdtree/internal/metrics"
	"simdtree/internal/server"
	"simdtree/internal/simd"
)

// newFrontend boots a Frontend over a fresh server with the DRR
// scheduler installed, behind an httptest listener.
func newFrontend(t *testing.T, cfg server.Config, tcfg Config) (*Frontend, *httptest.Server) {
	t.Helper()
	drr := NewDRR(64, 1)
	cfg.Scheduler = drr
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := New(s, drr, tcfg)
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return f, ts
}

// gatedRunner is a domain that blocks until release closes, counting its
// invocations — the probe for "exactly one engine run".
func gatedRunner(runs *atomic.Int64, release <-chan struct{}) server.Runner {
	return func(ctx context.Context, spec server.JobSpec, opts simd.Options, env server.RunEnv) (metrics.Stats, error) {
		runs.Add(1)
		select {
		case <-ctx.Done():
			return metrics.Stats{Cancelled: true}, context.Cause(ctx)
		case <-release:
			return metrics.Stats{P: spec.P, W: 1}, nil
		}
	}
}

// TestSingleFlightCollapse is the issue's acceptance scenario: 100
// concurrent identical submissions produce exactly one engine run, and
// all 100 waiters receive byte-identical response bodies.
func TestSingleFlightCollapse(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	f, ts := newFrontend(t,
		server.Config{Workers: 2, Runners: map[string]server.Runner{"block": gatedRunner(&runs, release)}},
		Config{})

	const n = 100
	const spec = `{"domain":"block","scheme":"GP-DK","p":8}`
	type reply struct {
		code      int
		collapsed bool
		body      []byte
		err       error
	}
	replies := make([]reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(spec))
			if err != nil {
				replies[i] = reply{err: err}
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			replies[i] = reply{
				code:      resp.StatusCode,
				collapsed: resp.Header.Get("X-Collapsed") == "1",
				body:      body,
				err:       err,
			}
		}(i)
	}

	// Hold the gate until every submission has joined the flight, so
	// the collapse genuinely happens in flight rather than via the
	// result cache.
	deadline := time.Now().Add(10 * time.Second)
	for f.ctr.collapsed.Load() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d submissions collapsed before the deadline", f.ctr.collapsed.Load(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	once.Do(func() { close(release) })
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("engine ran %d times for %d identical submissions, want exactly 1", got, n)
	}
	if got := f.ctr.flights.Load(); got != 1 {
		t.Errorf("flights counter = %d, want 1", got)
	}
	if got := f.ctr.collapsed.Load(); got != n-1 {
		t.Errorf("collapsed counter = %d, want %d", got, n-1)
	}
	collapsed := 0
	for i, r := range replies {
		if r.err != nil {
			t.Fatalf("request %d: %v", i, r.err)
		}
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, r.code, r.body)
		}
		if !bytes.Equal(r.body, replies[0].body) {
			t.Fatalf("request %d body differs from request 0:\n%s\nvs\n%s", i, r.body, replies[0].body)
		}
		if r.collapsed {
			collapsed++
		}
	}
	if collapsed != n-1 {
		t.Errorf("%d responses carry X-Collapsed, want %d", collapsed, n-1)
	}
}

// TestBatchSubmit covers POST /v1/jobs:batch: per-item verdicts in input
// order, in-batch collapsing, inline documents under wait, and the
// byte-identity of collapsed duplicates.
func TestBatchSubmit(t *testing.T) {
	_, ts := newFrontend(t, server.Config{Workers: 2}, Config{MaxBatch: 8})

	body := `{"wait": true, "jobs": [
		{"domain":"synthetic","scheme":"GP-DK","p":8,"synthetic":{"w":500,"seed":7}},
		{"domain":"synthetic","scheme":"GP-DK","p":8,"synthetic":{"w":500,"seed":7}},
		{"domain":"nope","scheme":"GP-DK","p":8}
	]}`
	resp, err := http.Post(ts.URL+"/v1/jobs:batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var br struct {
		Accepted  int `json:"accepted"`
		Rejected  int `json:"rejected"`
		Collapsed int `json:"collapsed"`
		Items     []struct {
			Index     int             `json:"index"`
			Code      int             `json:"code"`
			Error     string          `json:"error"`
			ID        string          `json:"id"`
			Status    server.Status   `json:"status"`
			Collapsed bool            `json:"collapsed"`
			Job       json.RawMessage `json:"job"`
		} `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Accepted != 2 || br.Rejected != 1 {
		t.Fatalf("accepted/rejected = %d/%d, want 2/1", br.Accepted, br.Rejected)
	}
	it := br.Items
	if len(it) != 3 {
		t.Fatalf("%d items, want 3", len(it))
	}
	if it[0].Code != http.StatusOK || it[0].Status != server.StatusDone {
		t.Fatalf("item 0: code %d status %q, want 200 done (%s)", it[0].Code, it[0].Status, it[0].Error)
	}
	if it[2].Code != http.StatusBadRequest || it[2].Error == "" {
		t.Fatalf("item 2: code %d error %q, want 400 with message", it[2].Code, it[2].Error)
	}
	// The duplicate either collapsed onto item 0's flight or (if item 0
	// finished first) came back as a cache hit; in the collapsed case
	// the inline documents must be byte-identical.
	if it[1].Code != http.StatusOK {
		t.Fatalf("item 1: code %d, want 200", it[1].Code)
	}
	if it[1].Collapsed {
		if br.Collapsed != 1 {
			t.Errorf("collapsed tally %d, want 1", br.Collapsed)
		}
		if !bytes.Equal(it[0].Job, it[1].Job) {
			t.Fatalf("collapsed duplicate's document differs:\n%s\nvs\n%s", it[0].Job, it[1].Job)
		}
		if it[1].ID != it[0].ID {
			t.Errorf("collapsed duplicate id %q != original %q", it[1].ID, it[0].ID)
		}
	}

	// Over-limit and empty batches are refused outright.
	for _, bad := range []string{
		`{"jobs": []}`,
		`{"jobs": [` + strings.Repeat(`{"domain":"synthetic","scheme":"GP-DK","p":8,"synthetic":{"w":100}},`, 8) +
			`{"domain":"synthetic","scheme":"GP-DK","p":8,"synthetic":{"w":100}}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs:batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad batch accepted with %d", resp.StatusCode)
		}
	}
}

// TestTenantQuota pins the per-tenant outstanding-jobs bound: the tenant
// at quota gets 429 with a Retry-After header while other tenants are
// unaffected, and finishing a job frees the slot.
func TestTenantQuota(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	f, ts := newFrontend(t,
		server.Config{Workers: 2, Runners: map[string]server.Runner{"block": gatedRunner(&runs, release)}},
		Config{TenantQuota: 1})

	submit := func(tenant string, p int) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
			strings.NewReader(fmt.Sprintf(`{"domain":"block","scheme":"GP-DK","p":%d}`, p)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(server.TenantHeader, tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := submit("t1", 2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("t1 first submit: %d", resp.StatusCode)
	}
	over := submit("t1", 4) // distinct spec, same tenant: over quota
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("t1 over-quota submit: %d, want 429", over.StatusCode)
	}
	if over.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	if resp := submit("t2", 4); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("t2 submit blocked by t1's quota: %d", resp.StatusCode)
	}
	if got := f.ctr.quotaRejections.Load(); got != 1 {
		t.Errorf("quota rejection counter = %d, want 1", got)
	}

	once.Do(func() { close(release) })
	// The finished job releases t1's slot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp := submit("t1", 8)
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("t1's quota slot never freed (last status %d)", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    int64
	typ   string
	data  server.JobEvent
	lines string
}

// readSSE consumes an event stream until it ends, returning the parsed
// events (comments are skipped).
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.typ != "" || cur.id != 0 {
				events = append(events, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, ":"):
			// comment / heartbeat
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.id)
		case strings.HasPrefix(line, "event: "):
			cur.typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.lines = strings.TrimPrefix(line, "data: ")
			if err := json.Unmarshal([]byte(cur.lines), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", cur.lines, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("SSE read: %v", err)
	}
	return events
}

// TestSSEStreamAndResume runs a real synthetic job, consumes its full
// event stream, then reconnects with Last-Event-ID and checks the
// resumed stream picks up exactly after the cursor and reaches the same
// terminal event.
func TestSSEStreamAndResume(t *testing.T) {
	f, ts := newFrontend(t, server.Config{Workers: 2, ProgressEvery: 50}, Config{})

	spec := `{"domain":"synthetic","scheme":"GP-DK","p":8,"synthetic":{"w":20000,"seed":7}}`
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	stream, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := readSSE(t, stream.Body)
	if len(events) < 3 {
		t.Fatalf("only %d events; want status + progress ticks + terminal", len(events))
	}
	var last int64
	progress := 0
	for _, ev := range events {
		if ev.id <= last {
			t.Fatalf("sequence not increasing: %d after %d", ev.id, last)
		}
		last = ev.id
		if ev.typ == server.EventProgress {
			progress++
		}
	}
	if progress == 0 {
		t.Error("no progress events in the stream")
	}
	fin := events[len(events)-1]
	if !fin.data.Terminal || fin.data.Status != server.StatusDone {
		t.Fatalf("final event %+v, want terminal done", fin.data)
	}

	// Resume from the middle: the stream must continue at mid+1.
	mid := events[len(events)/2].id
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+doc.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", fmt.Sprint(mid))
	resumed, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Body.Close()
	tail := readSSE(t, resumed.Body)
	if len(tail) == 0 {
		t.Fatal("resumed stream is empty")
	}
	if tail[0].id != mid+1 {
		t.Fatalf("resumed stream starts at %d, want %d", tail[0].id, mid+1)
	}
	if fin2 := tail[len(tail)-1]; !fin2.data.Terminal || fin2.id != fin.id {
		t.Fatalf("resumed stream ends at %+v, want the same terminal event %d", fin2.data, fin.id)
	}
	if got := f.ctr.sseResumes.Load(); got != 1 {
		t.Errorf("resume counter = %d, want 1", got)
	}

	// Error paths: unknown id, malformed cursor.
	if resp, err := http.Get(ts.URL + "/v1/jobs/zzz/events"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/" + doc.ID + "/events?last_event_id=bogus"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}
}

// TestEstimateEndpoint checks POST /v1/estimate prices specs without
// running them: synthetic W is exact, queens is a model prediction, and
// both yield positive cost units for DRR admission.
func TestEstimateEndpoint(t *testing.T) {
	_, ts := newFrontend(t, server.Config{Workers: 1}, Config{})

	post := func(spec string) estimateResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("estimate status %d: %s", resp.StatusCode, b)
		}
		var er estimateResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
		return er
	}

	syn := post(`{"domain":"synthetic","scheme":"GP-DK","p":64,"synthetic":{"w":20000,"seed":7}}`)
	if !syn.Exact || syn.PredictedW != 20000 {
		t.Fatalf("synthetic estimate %+v, want exact W=20000", syn)
	}
	if syn.CostUnits <= 0 || syn.PredictedCycles <= 0 || syn.ModelEfficiency <= 0 || syn.ModelEfficiency > 1 {
		t.Fatalf("synthetic estimate %+v has out-of-range fields", syn)
	}
	qn := post(`{"domain":"queens","scheme":"GP-S0.90","p":64,"queens":{"n":10}}`)
	if qn.Exact || qn.PredictedW <= 0 {
		t.Fatalf("queens estimate %+v, want inexact positive prediction", qn)
	}
	// No jobs were created by pricing.
	if resp, err := http.Get(ts.URL + "/v1/jobs"); err == nil {
		var list struct {
			Jobs []json.RawMessage `json:"jobs"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&list) //lint:allow errdrop shape-only check
		resp.Body.Close()
		if len(list.Jobs) != 0 {
			t.Errorf("estimate created %d jobs", len(list.Jobs))
		}
	}
}

// TestMetricsMerged checks GET /metrics keeps the wrapped server's
// document and adds the traffic counters and per-tenant DRR stats.
func TestMetricsMerged(t *testing.T) {
	_, ts := newFrontend(t, server.Config{Workers: 1}, Config{})
	spec := `{"domain":"synthetic","scheme":"GP-DK","p":8,"synthetic":{"w":500,"seed":7}}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs?wait=1", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(server.TenantHeader, "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(mresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"queue_depth", "traffic_flights_total", "traffic_collapsed_total", "traffic_flights_open", "traffic_tenants"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("metrics document lacks %q", key)
		}
	}
	if got, ok := doc["traffic_flights_total"].(float64); !ok || got != 1 {
		t.Errorf("traffic_flights_total = %v, want 1", doc["traffic_flights_total"])
	}
	tenants, ok := doc["traffic_tenants"].(map[string]any)
	if !ok {
		t.Fatalf("traffic_tenants is %T", doc["traffic_tenants"])
	}
	if _, ok := tenants["acme"]; !ok {
		t.Errorf("traffic_tenants %v lacks the submitting tenant", tenants)
	}
}

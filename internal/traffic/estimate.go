package traffic

import (
	"math"
	"strconv"
	"strings"

	"simdtree/internal/analysis"
	"simdtree/internal/puzzle"
	"simdtree/internal/queens"
	"simdtree/internal/server"
	"simdtree/internal/simd"
	"simdtree/internal/synthetic"
	"simdtree/internal/topology"
	"simdtree/internal/wire"
)

// Estimate prices a canonical job spec before anything runs: a predicted
// tree size, the paper's modelled efficiency for the spec's scheme and
// topology (equations 12/15), and the resulting parallel cycle count.
// The point is weighted admission, not precision — the tree-size models
// for the search domains are order-of-magnitude planning signals (the
// synthetic domain is exact by construction), and the docs say so.
type Estimate struct {
	// W is the predicted number of node expansions.
	W float64
	// Cycles is the predicted parallel running time in node-expansion
	// cycle equivalents: W / (P * Efficiency).
	Cycles float64
	// Efficiency is the modelled efficiency E(W, P) of the spec's scheme
	// on its topology.
	Efficiency float64
	// Exact marks a W that is declared rather than modelled (synthetic).
	Exact bool
	// BudgetCapped marks a prediction truncated by the spec's cycle
	// budget: the job will stop exhausted near Cycles, having expanded
	// roughly W nodes.
	BudgetCapped bool
	// PeakResidentBytes is the predicted peak bytes of stack storage the
	// job keeps in memory when run unbounded: P stacks of the domain's
	// modelled depth and level width, at the wire codec's per-node size.
	// A caller (or the frontend itself, Config.MemLimit) compares it
	// against a node's -mem-budget to decide whether the job needs a
	// mem_budget of its own before admission.
	PeakResidentBytes int64
}

// estimateAlpha is the splitting-quality assumption feeding the phase
// bounds, the paper's conservative choice.
const estimateAlpha = 0.5

// ForSpec estimates a canonical spec.  It never fails: unknown shapes
// fall back to pessimistic defaults, because the caller only needs a
// admission weight.
func ForSpec(spec server.JobSpec) Estimate {
	est := Estimate{}
	est.W, est.Exact = predictW(spec)

	p := float64(spec.P)
	if p < 1 {
		p = 1
	}
	ratio := costRatio(spec)
	x, matcher := schemeParams(spec.Scheme, est.W, p, ratio)
	v := analysis.VBoundGP(x)
	if matcher == "nGP" {
		v = analysis.VBoundNGP(x, est.W, estimateAlpha)
	}
	est.Efficiency = analysis.ModelEfficiency(x, 0, est.W, p, v, ratio, estimateAlpha)
	if est.Efficiency < 0.01 {
		// The model can collapse for tiny W on huge P; floor it so the
		// derived cycle count stays finite and the cost weight sane.
		est.Efficiency = 0.01
	}
	est.Cycles = est.W / (p * est.Efficiency)

	if spec.BudgetCycles > 0 && est.Cycles > float64(spec.BudgetCycles) {
		est.BudgetCapped = true
		est.Cycles = float64(spec.BudgetCycles)
		est.W = est.Cycles * p * est.Efficiency
	}
	est.PeakResidentBytes = predictPeakResidentBytes(spec, est.W)
	return est
}

// predictPeakResidentBytes models the job's peak resident stack bytes:
// every PE holds a DFS stack of the domain's depth, each level carrying
// the untried sibling alternatives, encoded at the wire codec's per-node
// size.  Like predictW it is an order-of-magnitude planning signal — the
// total is clamped by the tree size, since the stacks can never hold more
// than the generated frontier.
func predictPeakResidentBytes(spec server.JobSpec, w float64) int64 {
	depth, width := 20.0, 3.0
	nodeBytes := wire.NodeSize[puzzle.Node](wire.PuzzleCodec{}, puzzle.Goal())
	switch spec.Domain {
	case "synthetic":
		depth = math.Log2(w + 2)
		width = 4
		nodeBytes = wire.NodeSize[synthetic.Node](wire.SyntheticCodec{}, synthetic.Node{Budget: int64(w)})
	case "queens":
		n := 8.0
		if spec.Queens != nil && spec.Queens.N > 0 {
			n = float64(spec.Queens.N)
		}
		depth, width = n, n/2+1
		nodeBytes = wire.NodeSize[queens.Node](wire.QueensCodec{}, queens.Node{})
	case "puzzle":
		depth = 40
		if spec.Puzzle != nil {
			switch {
			case spec.Puzzle.Bound > 0:
				depth = float64(spec.Puzzle.Bound)
			case spec.Puzzle.Steps > 0:
				depth = float64(spec.Puzzle.Steps)
			}
		}
	}
	p := float64(spec.P)
	if p < 1 {
		p = 1
	}
	nodes := p * depth * width
	if limit := 3*w + p; nodes > limit {
		nodes = limit
	}
	return int64(nodes) * int64(nodeBytes)
}

// CostUnits converts a predicted tree size into DRR cost units: W/scale,
// clamped to [1/16, 16] so a wild misestimate can neither starve a tenant
// nor let one ride free.  scale <= 0 selects DefaultCostScale.
func (e Estimate) CostUnits(scale float64) float64 {
	if scale <= 0 {
		scale = DefaultCostScale
	}
	c := e.W / scale
	if c < 1.0/16 {
		c = 1.0 / 16
	}
	if c > 16 {
		c = 16
	}
	return c
}

// DefaultCostScale is the predicted node-expansion count worth one DRR
// cost unit.
const DefaultCostScale = 1e6

// predictW models the search-tree size of a spec.
//
//   - synthetic: W is declared in the spec — exact.
//   - queens: a branching-decay product, prod_i max(1, n - 1.5i): each
//     placed queen attacks away roughly a column and a half of the next
//     row's candidates.  Within ~4x of the measured tree up to n=13.
//   - puzzle: the final IDA* iteration grows geometrically in the bound;
//     2^(0.75*steps) for scrambles (the walk length bounds the solution
//     depth), 2^(0.7*bound) for explicit boards with a bound, and a flat
//     1e6 guess otherwise.
func predictW(spec server.JobSpec) (w float64, exact bool) {
	switch spec.Domain {
	case "synthetic":
		if spec.Synthetic != nil && spec.Synthetic.W > 0 {
			return float64(spec.Synthetic.W), true
		}
		return 1, true
	case "queens":
		n := 8
		if spec.Queens != nil && spec.Queens.N > 0 {
			n = spec.Queens.N
		}
		w := 1.0
		for i := 0; i < n; i++ {
			b := float64(n) - 1.5*float64(i)
			if b > 1 {
				w *= b
			}
		}
		return w, false
	case "puzzle":
		if spec.Puzzle != nil {
			if len(spec.Puzzle.Tiles) == 16 {
				if spec.Puzzle.Bound > 0 {
					return clampW(math.Pow(2, 0.7*float64(spec.Puzzle.Bound))), false
				}
				return 1e6, false
			}
			if spec.Puzzle.Steps > 0 {
				return clampW(math.Pow(2, 0.75*float64(spec.Puzzle.Steps))), false
			}
		}
		return 1e6, false
	}
	// Injected domains (test runners): no model, neutral weight.
	return 1e6, false
}

func clampW(w float64) float64 {
	if w < 100 {
		return 100
	}
	if w > 1e9 {
		return 1e9
	}
	return w
}

// costRatio is tlb/Ucalc on the spec's topology at its machine size — the
// overhead term of the efficiency model.  Unresolvable topologies fall
// back to the paper's CM-2 constant.
func costRatio(spec server.JobSpec) float64 {
	costs := simd.CM2Costs()
	net, err := topology.ByName(spec.Topology)
	if err != nil {
		return 13.0 / 30.0
	}
	p := spec.P
	if p < 1 {
		p = 1
	}
	return float64(costs.PhaseCost(net, p, 1)) / float64(costs.NodeExpansion)
}

// schemeParams extracts the matcher and effective static threshold of a
// scheme label ("GP-S0.90", "nGP-DK", ...).  Dynamic triggers (D^P, D^K)
// track the optimum at run time, so they are priced at the model's
// optimal static trigger xo (equation 18); unparsable labels are priced
// as GP at xo.
func schemeParams(label string, w, p, ratio float64) (x float64, matcher string) {
	matcher = "GP"
	trig := ""
	if i := strings.Index(label, "-"); i >= 0 {
		if label[:i] == "nGP" {
			matcher = "nGP"
		}
		trig = label[i+1:]
	}
	if strings.HasPrefix(trig, "S") {
		if v, err := strconv.ParseFloat(trig[1:], 64); err == nil && v > 0 && v < 1 {
			return v, matcher
		}
	}
	return analysis.OptimalStaticTrigger(w, p, ratio, estimateAlpha), matcher
}

package traffic

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"simdtree/internal/server"
)

// Config tunes the traffic frontend.  The zero value selects the
// documented defaults.
type Config struct {
	// MaxBatch bounds the specs accepted by one POST /v1/jobs:batch
	// request.  Default 64.
	MaxBatch int
	// TenantQuota bounds the jobs a single tenant may have outstanding
	// (queued or running, collapsed flights counted once) through this
	// frontend.  0 means unlimited.
	TenantQuota int
	// HeartbeatEvery is the SSE comment-heartbeat cadence.  Default 15s.
	HeartbeatEvery time.Duration
	// CostScale is the predicted node-expansion count worth one DRR cost
	// unit for weighted admission.  Default DefaultCostScale.
	CostScale float64
	// MemLimit is the node's resident-memory comfort line in bytes.
	// When positive, a spec that neither sets mem_budget nor fits —
	// predicted peak resident bytes within the limit — is refused with
	// 413 and told to resubmit with a mem_budget, under which the run
	// spills to disk instead of growing without bound.  0 disables the
	// check.
	MemLimit int64
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 15 * time.Second
	}
	if c.CostScale <= 0 {
		c.CostScale = DefaultCostScale
	}
	return c
}

// Frontend layers traffic management over a server.Server: single-flight
// collapsing, batch admission, SSE progress streaming, cost estimation,
// and per-tenant quotas.  Its Handler wraps the server's and owns the
// routes it adds; everything else passes through untouched.
type Frontend struct {
	srv   *server.Server
	inner http.Handler
	drr   *DRR // nil when the server runs a different scheduler
	cfg   Config

	mu          sync.Mutex
	flights     map[string]*flight
	outstanding map[string]int // live non-collapsed jobs per tenant

	ctr trafficCounters
}

type trafficCounters struct {
	flights         atomic.Int64 // engine submissions that opened a flight
	collapsed       atomic.Int64 // submissions that joined an existing flight
	batches         atomic.Int64
	batchJobs       atomic.Int64
	quotaRejections atomic.Int64
	memRejections   atomic.Int64 // specs refused for predicted memory over Config.MemLimit
	sseStreams      atomic.Int64
	sseResumes      atomic.Int64 // streams opened with a Last-Event-ID
	estimates       atomic.Int64
}

// flight is one in-flight canonical spec: every concurrent identical
// submission shares it, and at terminal every subscriber fans out the one
// rendered response, byte for byte.  h is resolved before the flight is
// published, so readers never observe a nil handle; bytes is written
// exactly once before done closes.
type flight struct {
	key   string
	h     *server.JobHandle
	done  chan struct{}
	bytes []byte
}

// New builds a Frontend over srv.  drr may be nil; when the DRR scheduler
// is installed, passing it here surfaces per-tenant queue stats in
// /metrics.
func New(srv *server.Server, drr *DRR, cfg Config) *Frontend {
	return &Frontend{
		srv:         srv,
		inner:       srv.Handler(),
		drr:         drr,
		cfg:         cfg.withDefaults(),
		flights:     make(map[string]*flight),
		outstanding: make(map[string]int),
	}
}

// Handler returns the frontend's routing table: the traffic routes plus a
// passthrough to the wrapped server for everything else.  POST /v1/jobs
// is intercepted so single submissions collapse too.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", f.handleSubmit)
	mux.HandleFunc("POST /v1/jobs:batch", f.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}/events", f.handleEvents)
	mux.HandleFunc("POST /v1/estimate", f.handleEstimate)
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	mux.Handle("/", f.inner)
	return mux
}

// admit runs one spec through quota, estimate, and the flight table.  On
// success the returned flight is live (or already terminal); collapsed
// reports whether it was shared rather than opened.  On refusal the
// flight is nil.
func (f *Frontend) admit(canonical server.JobSpec, key, tenant string) (fl *flight, collapsed bool, rf *server.Refusal) {
	est := ForSpec(canonical)
	cost := est.CostUnits(f.cfg.CostScale)
	if lim := f.cfg.MemLimit; lim > 0 && canonical.MemBudget == 0 && est.PeakResidentBytes > lim {
		f.ctr.memRejections.Add(1)
		return nil, false, &server.Refusal{
			Code: http.StatusRequestEntityTooLarge,
			Message: fmt.Sprintf("predicted peak resident memory %d bytes exceeds the node limit %d; resubmit with mem_budget set (the run then spills cold stack levels to disk with identical results)",
				est.PeakResidentBytes, lim),
		}
	}

	f.mu.Lock()
	if fl := f.flights[key]; fl != nil {
		f.mu.Unlock()
		f.ctr.collapsed.Add(1)
		return fl, true, nil
	}
	if q := f.cfg.TenantQuota; q > 0 && f.outstanding[tenant] >= q {
		f.mu.Unlock()
		f.ctr.quotaRejections.Add(1)
		return nil, false, &server.Refusal{
			Code:       http.StatusTooManyRequests,
			Message:    fmt.Sprintf("tenant %q has %d jobs outstanding (quota %d)", tenant, q, q),
			RetryAfter: 1,
		}
	}
	h, rf := f.srv.SubmitCanonical(canonical, key, tenant, cost)
	if rf != nil {
		f.mu.Unlock()
		return nil, false, rf
	}
	fl = &flight{key: key, h: h, done: make(chan struct{})}
	f.flights[key] = fl
	f.outstanding[tenant]++
	f.ctr.flights.Add(1)
	f.mu.Unlock()
	go f.resolve(fl, tenant)
	return fl, false, nil
}

// resolve waits out the flight's job, renders the terminal response once,
// retires the flight from the table and releases the tenant's quota slot.
// The bytes write happens before close(done), so every subscriber reading
// after <-done sees the complete body.  The wait needs no context of its
// own: the job's lifetime is bounded by the server (Shutdown cancels every
// job), and the flight must outlive any one subscriber anyway.
//
//lint:allow ctxflow flight lifetime is bounded by the job, which server shutdown cancels
func (f *Frontend) resolve(fl *flight, tenant string) {
	<-fl.h.Done()
	b, err := fl.h.ResponseBytes()
	if err != nil {
		b = []byte("{\"error\":\"failed to render job\"}\n")
	}
	fl.bytes = b
	f.mu.Lock()
	if f.flights[fl.key] == fl {
		delete(f.flights, fl.key)
	}
	if f.outstanding[tenant]--; f.outstanding[tenant] <= 0 {
		delete(f.outstanding, tenant)
	}
	f.mu.Unlock()
	close(fl.done)
}

// collapsedHeader marks a response served by joining an existing flight.
const collapsedHeader = "X-Collapsed"

// handleSubmit implements POST /v1/jobs with single-flight collapsing.
// With ?wait=1 the response is deferred to the flight's terminal body, so
// all collapsed waiters receive byte-identical documents; without it the
// behaviour matches the wrapped server's 202/200 contract, plus the
// X-Collapsed marker.
func (f *Frontend) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec server.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad job spec: %v", err))
		return
	}
	tenant, err := server.TenantFrom(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	canonical, err := f.srv.CanonicalizeSpec(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	fl, collapsed, rf := f.admit(canonical, server.CacheKey(canonical), tenant)
	if rf != nil {
		applyRefusal(w, rf)
		return
	}
	if collapsed {
		w.Header().Set(collapsedHeader, "1")
	}
	if wantWait(r) {
		select {
		case <-r.Context().Done():
			return
		case <-fl.done:
		}
		writeRaw(w, http.StatusOK, fl.bytes)
		return
	}
	writeHandle(w, fl.h)
}

// writeHandle renders the job's current document with the server's
// 200-when-terminal / 202-while-pending status contract.
func writeHandle(w http.ResponseWriter, h *server.JobHandle) {
	code := http.StatusAccepted
	if h.Terminal() {
		code = http.StatusOK
	}
	b, err := h.ResponseBytes()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "failed to render job")
		return
	}
	writeRaw(w, code, b)
}

// batchRequest is the POST /v1/jobs:batch body.
type batchRequest struct {
	Jobs []server.JobSpec `json:"jobs"`
	// Wait defers the response until every admitted job is terminal and
	// inlines each full document.
	Wait bool `json:"wait,omitempty"`
}

// batchItem is one per-spec verdict, in input order.
type batchItem struct {
	Index      int             `json:"index"`
	Code       int             `json:"code"`
	Error      string          `json:"error,omitempty"`
	ID         string          `json:"id,omitempty"`
	Key        string          `json:"key,omitempty"`
	Status     server.Status   `json:"status,omitempty"`
	CacheHit   bool            `json:"cache_hit,omitempty"`
	Collapsed  bool            `json:"collapsed,omitempty"`
	RetryAfter int             `json:"retry_after,omitempty"`
	Job        json.RawMessage `json:"job,omitempty"`

	fl *flight
}

// batchResponse is the POST /v1/jobs:batch reply: per-item verdicts plus
// the tallies a load generator wants without re-counting.
type batchResponse struct {
	Accepted  int         `json:"accepted"`
	Rejected  int         `json:"rejected"`
	Collapsed int         `json:"collapsed"`
	Items     []batchItem `json:"items"`
}

// handleBatch implements POST /v1/jobs:batch: up to MaxBatch specs
// admitted independently, one verdict each, always answered 200 — item
// codes carry the per-spec outcome, exactly as if each had been POSTed
// alone.
func (f *Frontend) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad batch: %v", err))
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "batch carries no jobs")
		return
	}
	if len(req.Jobs) > f.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds the %d-job limit", len(req.Jobs), f.cfg.MaxBatch))
		return
	}
	tenant, err := server.TenantFrom(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	f.ctr.batches.Add(1)
	f.ctr.batchJobs.Add(int64(len(req.Jobs)))

	resp := batchResponse{Items: make([]batchItem, len(req.Jobs))}
	for i, spec := range req.Jobs {
		it := &resp.Items[i]
		it.Index = i
		canonical, err := f.srv.CanonicalizeSpec(spec)
		if err != nil {
			it.Code = http.StatusBadRequest
			it.Error = err.Error()
			resp.Rejected++
			continue
		}
		fl, collapsed, rf := f.admit(canonical, server.CacheKey(canonical), tenant)
		if rf != nil {
			it.Code = rf.Code
			it.Error = rf.Message
			it.RetryAfter = rf.RetryAfter
			resp.Rejected++
			continue
		}
		it.fl = fl
		it.ID = fl.h.ID()
		it.Key = fl.h.Key()
		it.Status = fl.h.Status()
		it.CacheHit = fl.h.CacheHit()
		it.Collapsed = collapsed
		it.Code = http.StatusAccepted
		if fl.h.Terminal() {
			it.Code = http.StatusOK
		}
		resp.Accepted++
		if collapsed {
			resp.Collapsed++
		}
	}
	if req.Wait {
		for i := range resp.Items {
			it := &resp.Items[i]
			if it.fl == nil {
				continue
			}
			select {
			case <-r.Context().Done():
				writeError(w, http.StatusRequestTimeout, "client went away mid-batch")
				return
			case <-it.fl.done:
			}
			it.Code = http.StatusOK
			it.Status = it.fl.h.Status()
			it.Job = json.RawMessage(it.fl.bytes)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// estimateResponse is the POST /v1/estimate reply.
type estimateResponse struct {
	Domain          string  `json:"domain"`
	Scheme          string  `json:"scheme"`
	P               int     `json:"p"`
	Topology        string  `json:"topology"`
	PredictedW      float64 `json:"predicted_w"`
	PredictedCycles float64 `json:"predicted_cycles"`
	ModelEfficiency float64 `json:"model_efficiency"`
	CostUnits       float64 `json:"cost_units"`
	Exact           bool    `json:"exact"`
	BudgetCapped    bool    `json:"budget_capped,omitempty"`

	// PredictedPeakResidentBytes is the modelled peak of resident stack
	// memory for an unbounded run — the number to weigh against a node's
	// -mem-budget when deciding whether to set mem_budget on the spec.
	PredictedPeakResidentBytes int64 `json:"predicted_peak_resident_bytes"`
}

// handleEstimate implements POST /v1/estimate: price a spec with the
// paper's efficiency model without running anything.  The same estimate
// weights the DRR dequeue at admission.
func (f *Frontend) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var spec server.JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad job spec: %v", err))
		return
	}
	canonical, err := f.srv.CanonicalizeSpec(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	f.ctr.estimates.Add(1)
	est := ForSpec(canonical)
	writeJSON(w, http.StatusOK, estimateResponse{
		Domain:          canonical.Domain,
		Scheme:          canonical.Scheme,
		P:               canonical.P,
		Topology:        canonical.Topology,
		PredictedW:      est.W,
		PredictedCycles: est.Cycles,
		ModelEfficiency: est.Efficiency,
		CostUnits:       est.CostUnits(f.cfg.CostScale),
		Exact:           est.Exact,
		BudgetCapped:    est.BudgetCapped,

		PredictedPeakResidentBytes: est.PeakResidentBytes,
	})
}

// handleMetrics merges the traffic layer's counters into the wrapped
// server's /metrics document, preserving every existing field.
func (f *Frontend) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rec := newRecorder()
	f.inner.ServeHTTP(rec, r)
	var doc map[string]any
	if rec.code != http.StatusOK || json.Unmarshal(rec.body, &doc) != nil {
		writeRaw(w, rec.code, rec.body)
		return
	}
	doc["traffic_flights_total"] = f.ctr.flights.Load()
	doc["traffic_collapsed_total"] = f.ctr.collapsed.Load()
	doc["traffic_batches_total"] = f.ctr.batches.Load()
	doc["traffic_batch_jobs_total"] = f.ctr.batchJobs.Load()
	doc["traffic_quota_rejections_total"] = f.ctr.quotaRejections.Load()
	doc["traffic_mem_rejections_total"] = f.ctr.memRejections.Load()
	doc["traffic_sse_streams_total"] = f.ctr.sseStreams.Load()
	doc["traffic_sse_resumes_total"] = f.ctr.sseResumes.Load()
	doc["traffic_estimates_total"] = f.ctr.estimates.Load()
	f.mu.Lock()
	doc["traffic_flights_open"] = len(f.flights)
	f.mu.Unlock()
	if f.drr != nil {
		doc["traffic_tenants"] = f.drr.Stats()
	}
	writeJSON(w, http.StatusOK, doc)
}

// recorder is a minimal in-memory ResponseWriter for re-serving the inner
// handler's output.
type recorder struct {
	header http.Header
	code   int
	body   []byte
}

func newRecorder() *recorder {
	return &recorder{header: make(http.Header), code: http.StatusOK}
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(code int) { r.code = code }

func (r *recorder) Write(b []byte) (int, error) {
	r.body = append(r.body, b...)
	return len(b), nil
}

// wantWait reports whether the request asked for a synchronous terminal
// response.
func wantWait(r *http.Request) bool {
	switch r.URL.Query().Get("wait") {
	case "1", "true", "yes":
		return true
	}
	return false
}

func applyRefusal(w http.ResponseWriter, rf *server.Refusal) {
	if rf.Code == http.StatusTooManyRequests && rf.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(rf.RetryAfter))
	}
	writeError(w, rf.Code, rf.Message)
}

// writeRaw writes pre-rendered JSON bytes unmodified — the collapse
// fan-out path, where byte identity is the contract.
func writeRaw(w http.ResponseWriter, code int, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(b) //lint:allow errdrop response writer errors are unreportable
}

// writeJSON mirrors the server's encoding (indented, trailing newline).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) //lint:allow errdrop response writer errors are unreportable
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

package scan

import mbits "math/bits"

// Bits is a flat word-packed flag vector: bit i of the vector lives in
// word i/64 at position i%64.  It is the structure-of-arrays form of the
// []bool flag slices the phase primitives operate on — the representation
// the CM-2 kept its context flags in — so reductions that walk P booleans
// become popcounts over P/64 words and enumerations visit only the set
// bits.  The engine maintains the invariant that bits at or beyond the
// machine size are never set; every reduction below relies on it.
type Bits []uint64

// NewBits returns a zeroed vector able to hold n flags.
func NewBits(n int) Bits {
	//lint:allow hotalloc bit vectors are allocated once by their owner and reused for the whole run
	return make(Bits, (n+63)/64)
}

// Get reports flag i.
func (b Bits) Get(i int) bool { return b[i>>6]>>(uint(i)&63)&1 != 0 }

// SetTo sets flag i to v branch-free: the word is masked and the new bit
// OR-ed in, so flag maintenance in the expansion hot path costs a couple
// of ALU operations and no mispredicted branch.
//
//lint:hotpath
func (b Bits) SetTo(i int, v bool) {
	var bit uint64
	if v {
		bit = 1
	}
	w := &b[i>>6]
	sh := uint(i) & 63
	*w = *w&^(1<<sh) | bit<<sh
}

// Clear zeroes every flag.
func (b Bits) Clear() {
	for i := range b {
		b[i] = 0
	}
}

// None reports that no flag is set — the all-stacks-empty termination
// reduction, one load and compare per 64 processors.
func (b Bits) None() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Any reports that at least one flag is set.
func (b Bits) Any() bool { return !b.None() }

// CountBits returns the number of set flags by word popcounts — the
// reduction Count performs on a []bool.
func (b Bits) CountBits() int {
	c := 0
	for _, w := range b {
		c += mbits.OnesCount64(w)
	}
	return c
}

// FillBools expands the first len(dst) flags into a []bool, branch-free.
// It bridges the bitset representation to consumers of the legacy flag
// slices (baseline balancers, the distributed-steal driver).
//
//lint:hotpath
func (b Bits) FillBools(dst []bool) {
	for i := range dst {
		dst[i] = b[i>>6]>>(uint(i)&63)&1 != 0
	}
}

// ComplementInto writes the complement of the first n flags of src into
// dst (which must hold n flags), masking the tail of the last word so the
// no-set-bits-beyond-n invariant is preserved.  The engine derives the
// idle (no work) flags from the has-work bitset with it.
//
//lint:hotpath
func ComplementInto(dst, src Bits, n int) {
	words := (n + 63) / 64
	if len(dst) < words || len(src) < words {
		panic("scan: bit vector too short")
	}
	for i := 0; i < words; i++ {
		dst[i] = ^src[i]
	}
	if r := uint(n) & 63; r != 0 {
		dst[words-1] &= 1<<r - 1
	}
}

// EnumerateBitsInto ranks the set flags of b exactly like EnumerateInto
// ranks a []bool: ranks[i] is the number of set flags strictly before i
// when flag i is set and -1 otherwise, and the count of set flags is
// returned.  Only the set bits are visited, so a sparse flag vector costs
// O(count + n/64) instead of O(n).
//
//lint:hotpath
func EnumerateBitsInto(ranks []int, b Bits, n int) (count int) {
	if len(ranks) != n {
		panic("scan: output length mismatch")
	}
	for i := range ranks {
		ranks[i] = -1
	}
	return enumBitRange(ranks, b, 0, n, 0)
}

// EnumerateBitsFromInto is the rotated form underlying GP matching,
// identical in output to EnumerateFromInto: enumeration starts at flag
// start and wraps, so the first set flag at or after start gets rank 0.
//
//lint:hotpath
func EnumerateBitsFromInto(ranks []int, b Bits, start, n int) (count int) {
	if len(ranks) != n {
		panic("scan: output length mismatch")
	}
	for i := range ranks {
		ranks[i] = -1
	}
	if n == 0 {
		return 0
	}
	start = ((start % n) + n) % n
	count = enumBitRange(ranks, b, start, n, 0)
	count = enumBitRange(ranks, b, 0, start, count)
	return count
}

// enumBitRange assigns consecutive ranks starting at next to the set bits
// of b in [lo, hi), ascending, and returns the next free rank.
func enumBitRange(ranks []int, b Bits, lo, hi, next int) int {
	for wi := lo >> 6; wi < len(b) && wi<<6 < hi; wi++ {
		w := b[wi]
		base := wi << 6
		if base < lo {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		for w != 0 {
			i := base + mbits.TrailingZeros64(w)
			if i >= hi {
				break
			}
			w &= w - 1
			ranks[i] = next
			next++
		}
	}
	return next
}

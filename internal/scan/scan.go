// Package scan implements the parallel-prefix (scan) primitives the paper's
// load-balancing setup step is built from (Blelloch, "Scans as Primitive
// Parallel Operations", 1989): prefix sums, flag enumeration, reductions and
// the rendezvous allocation scheme of Hillis used to match idle processors
// with busy ones.
//
// Two implementations of the prefix sum are provided: a sequential one and a
// logarithmic-depth tree walk mirroring how a hypercube or the CM-2 scan
// hardware evaluates it.  They produce identical results (property-tested);
// the tree version exists so the number of parallel steps can be inspected
// and so the package documents the algorithm the cost model charges for.
package scan

// PrefixSum returns the exclusive prefix sum of xs: out[i] is the sum of
// xs[0..i-1], with out[0] == 0.  The input is not modified.
func PrefixSum(xs []int) []int {
	out := make([]int, len(xs))
	sum := 0
	for i, x := range xs {
		out[i] = sum
		sum += x
	}
	return out
}

// InclusivePrefixSum returns the inclusive prefix sum of xs: out[i] is the
// sum of xs[0..i].
func InclusivePrefixSum(xs []int) []int {
	out := make([]int, len(xs))
	sum := 0
	for i, x := range xs {
		sum += x
		out[i] = sum
	}
	return out
}

// TreePrefixSum computes the same exclusive prefix sum as PrefixSum using
// the work-efficient up-sweep/down-sweep tree algorithm (Blelloch 1989).
// It returns the result together with the number of parallel steps a
// machine with one processor per element would need (2*ceil(log2 n)).
func TreePrefixSum(xs []int) (out []int, steps int) {
	n := len(xs)
	out = make([]int, n)
	copy(out, xs)
	if n == 0 {
		return out, 0
	}
	// Round up to a power of two; the tail is padded with zeros.
	size := 1
	for size < n {
		size <<= 1
	}
	buf := make([]int, size)
	copy(buf, out)

	// Up-sweep: build partial sums.
	for d := 1; d < size; d <<= 1 {
		for i := 2*d - 1; i < size; i += 2 * d {
			buf[i] += buf[i-d]
		}
		steps++
	}
	// Down-sweep: convert to exclusive prefix sums.
	buf[size-1] = 0
	for d := size / 2; d >= 1; d >>= 1 {
		for i := 2*d - 1; i < size; i += 2 * d {
			left := buf[i-d]
			buf[i-d] = buf[i]
			buf[i] += left
		}
		steps++
	}
	copy(out, buf[:n])
	return out, steps
}

// Enumerate ranks the set positions of flags: ranks[i] is the number of set
// flags strictly before position i when flags[i] is set, and -1 otherwise.
// The total count of set flags is returned as well.  This is the
// "enumeration" the paper performs on both the idle and the busy processor
// sets during the load-balancing setup step.
func Enumerate(flags []bool) (ranks []int, count int) {
	ranks = make([]int, len(flags))
	for i, f := range flags {
		if f {
			ranks[i] = count
			count++
		} else {
			ranks[i] = -1
		}
	}
	return ranks, count
}

// EnumerateFrom ranks the set positions of flags starting the enumeration
// at position start and wrapping around, so the first set flag at or after
// start receives rank 0.  This is the rotated enumeration underlying the
// paper's GP (global-pointer) matching scheme.
func EnumerateFrom(flags []bool, start int) (ranks []int, count int) {
	n := len(flags)
	ranks = make([]int, n)
	for i := range ranks {
		ranks[i] = -1
	}
	if n == 0 {
		return ranks, 0
	}
	start = ((start % n) + n) % n
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if flags[i] {
			ranks[i] = count
			count++
		}
	}
	return ranks, count
}

// Sum reduces xs by addition.
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Count returns the number of set flags, the reduction the trigger check
// performs every node-expansion cycle to obtain the active count A.
func Count(flags []bool) int {
	c := 0
	for _, f := range flags {
		if f {
			c++
		}
	}
	return c
}

// Max returns the maximum of xs and true, or zero and false for an empty
// slice.
func Max(xs []int) (int, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, true
}

// MinNonNeg returns the smallest non-negative element of xs and true, or
// zero and false when there is none.  Parallel IDA* uses it to combine the
// per-processor next-iteration cost bounds (-1 marking "none").
func MinNonNeg(xs []int) (int, bool) {
	best, ok := 0, false
	for _, x := range xs {
		if x < 0 {
			continue
		}
		if !ok || x < best {
			best, ok = x, true
		}
	}
	return best, ok
}

// Pair records that donor busy processor From sends work to idle processor
// To during a load-balancing phase.
type Pair struct {
	From int // donor (busy) processor id
	To   int // receiver (idle) processor id
}

// Rendezvous matches busy processors to idle processors one-on-one using
// the rendezvous allocation scheme described by Hillis: both sets are
// enumerated, and the busy processor with rank r is matched to the idle
// processor with the same rank r.  busyRanks and idleRanks must come from
// Enumerate or EnumerateFrom over slices of equal length.  When the two
// sets have different sizes only the first min(|busy|, |idle|) of each are
// matched, exactly as in the paper (if I > A, the remaining I-A idle
// processors receive no work).
func Rendezvous(busyRanks, idleRanks []int) []Pair {
	if len(busyRanks) != len(idleRanks) {
		panic("scan: rank slices of unequal length")
	}
	// Invert the idle enumeration: idleByRank[r] = processor with rank r.
	idleByRank := make([]int, 0, len(idleRanks))
	maxRank := -1
	for _, r := range idleRanks {
		if r > maxRank {
			maxRank = r
		}
	}
	idleByRank = append(idleByRank, make([]int, maxRank+1)...)
	for i, r := range idleRanks {
		if r >= 0 {
			idleByRank[r] = i
		}
	}
	var pairs []Pair
	for i, r := range busyRanks {
		if r >= 0 && r <= maxRank {
			pairs = append(pairs, Pair{From: i, To: idleByRank[r]})
		}
	}
	return pairs
}

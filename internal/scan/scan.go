// Package scan implements the parallel-prefix (scan) primitives the paper's
// load-balancing setup step is built from (Blelloch, "Scans as Primitive
// Parallel Operations", 1989): prefix sums, flag enumeration, reductions and
// the rendezvous allocation scheme of Hillis used to match idle processors
// with busy ones.
//
// Two implementations of the prefix sum are provided: a sequential one and a
// logarithmic-depth tree walk mirroring how a hypercube or the CM-2 scan
// hardware evaluates it.  They produce identical results (property-tested);
// the tree version exists so the number of parallel steps can be inspected
// and so the package documents the algorithm the cost model charges for.
package scan

import "sync"

// PrefixSum returns the exclusive prefix sum of xs: out[i] is the sum of
// xs[0..i-1], with out[0] == 0.  The input is not modified.
func PrefixSum(xs []int) []int {
	out := make([]int, len(xs))
	PrefixSumInto(out, xs)
	return out
}

// PrefixSumInto computes the exclusive prefix sum of xs into out, which
// must have the same length, and returns the total sum.  It is the
// allocation-free form of PrefixSum for callers that reuse scratch.
//
//lint:hotpath
func PrefixSumInto(out, xs []int) int {
	if len(out) != len(xs) {
		panic("scan: output length mismatch")
	}
	sum := 0
	for i, x := range xs {
		out[i] = sum
		sum += x
	}
	return sum
}

// InclusivePrefixSum returns the inclusive prefix sum of xs: out[i] is the
// sum of xs[0..i].
func InclusivePrefixSum(xs []int) []int {
	out := make([]int, len(xs))
	sum := 0
	for i, x := range xs {
		sum += x
		out[i] = sum
	}
	return out
}

// TreePrefixSum computes the same exclusive prefix sum as PrefixSum using
// the work-efficient up-sweep/down-sweep tree algorithm (Blelloch 1989).
// It returns the result together with the number of parallel steps a
// machine with one processor per element would need (2*ceil(log2 n)).
func TreePrefixSum(xs []int) (out []int, steps int) {
	n := len(xs)
	out = make([]int, n)
	copy(out, xs)
	if n == 0 {
		return out, 0
	}
	// Round up to a power of two; the tail is padded with zeros.
	size := 1
	for size < n {
		size <<= 1
	}
	buf := make([]int, size)
	copy(buf, out)

	// Up-sweep: build partial sums.
	for d := 1; d < size; d <<= 1 {
		for i := 2*d - 1; i < size; i += 2 * d {
			buf[i] += buf[i-d]
		}
		steps++
	}
	// Down-sweep: convert to exclusive prefix sums.
	buf[size-1] = 0
	for d := size / 2; d >= 1; d >>= 1 {
		for i := 2*d - 1; i < size; i += 2 * d {
			left := buf[i-d]
			buf[i-d] = buf[i]
			buf[i] += left
		}
		steps++
	}
	copy(out, buf[:n])
	return out, steps
}

// Enumerate ranks the set positions of flags: ranks[i] is the number of set
// flags strictly before position i when flags[i] is set, and -1 otherwise.
// The total count of set flags is returned as well.  This is the
// "enumeration" the paper performs on both the idle and the busy processor
// sets during the load-balancing setup step.
func Enumerate(flags []bool) (ranks []int, count int) {
	ranks = make([]int, len(flags))
	count = EnumerateInto(ranks, flags)
	return ranks, count
}

// EnumerateInto is Enumerate writing into caller-provided ranks (which must
// have the same length as flags); it returns the count of set flags.
//
//lint:hotpath
func EnumerateInto(ranks []int, flags []bool) (count int) {
	if len(ranks) != len(flags) {
		panic("scan: output length mismatch")
	}
	for i, f := range flags {
		if f {
			ranks[i] = count
			count++
		} else {
			ranks[i] = -1
		}
	}
	return count
}

// EnumerateFrom ranks the set positions of flags starting the enumeration
// at position start and wrapping around, so the first set flag at or after
// start receives rank 0.  This is the rotated enumeration underlying the
// paper's GP (global-pointer) matching scheme.
func EnumerateFrom(flags []bool, start int) (ranks []int, count int) {
	ranks = make([]int, len(flags))
	count = EnumerateFromInto(ranks, flags, start)
	return ranks, count
}

// EnumerateFromInto is EnumerateFrom writing into caller-provided ranks
// (same length as flags); it returns the count of set flags.
//
//lint:hotpath
func EnumerateFromInto(ranks []int, flags []bool, start int) (count int) {
	n := len(flags)
	if len(ranks) != n {
		panic("scan: output length mismatch")
	}
	for i := range ranks {
		ranks[i] = -1
	}
	if n == 0 {
		return 0
	}
	start = ((start % n) + n) % n
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if flags[i] {
			ranks[i] = count
			count++
		}
	}
	return count
}

// parallelMin is the element count below which the parallel prefix
// operations fall back to their sequential forms: for small inputs the
// goroutine fan-out costs more than the scan itself.  The cut-over only
// affects wall-clock time — both paths produce identical output.
const parallelMin = 2048

// shardBounds returns the [lo, hi) range of shard w when n elements are
// divided across workers contiguous chunks, the same chunking the engine
// uses for expansion sharding.
func shardBounds(w, workers, n int) (lo, hi int) {
	chunk := (n + workers - 1) / workers
	lo = w * chunk
	hi = lo + chunk
	if hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// EnumerateParallelInto computes exactly EnumerateInto using up to workers
// goroutines: each shard counts its set flags, a sequential exclusive scan
// over the per-shard counts assigns shard offsets, and the shards fill
// their ranks in parallel.  The reduction order is fixed by shard index, so
// the output is bit-identical to the sequential form for any worker count.
//
//lint:hotpath
func EnumerateParallelInto(ranks []int, flags []bool, workers int) (count int) {
	n := len(flags)
	if workers <= 1 || n < parallelMin {
		return EnumerateInto(ranks, flags)
	}
	if len(ranks) != n {
		panic("scan: output length mismatch")
	}
	if workers > n {
		workers = n
	}
	//lint:allow hotalloc O(workers) shard counts, engaged only for scans of parallelMin elements or more
	counts := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow hotalloc bounded parallel fan-out above parallelMin affects wall-clock only
		go func(w int) {
			defer wg.Done()
			lo, hi := shardBounds(w, workers, n)
			c := 0
			for i := lo; i < hi; i++ {
				if flags[i] {
					c++
				}
			}
			counts[w] = c
		}(w)
	}
	wg.Wait()
	count = 0
	for w, c := range counts {
		counts[w] = count
		count += c
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow hotalloc bounded parallel fan-out above parallelMin affects wall-clock only
		go func(w int) {
			defer wg.Done()
			lo, hi := shardBounds(w, workers, n)
			r := counts[w]
			for i := lo; i < hi; i++ {
				if flags[i] {
					ranks[i] = r
					r++
				} else {
					ranks[i] = -1
				}
			}
		}(w)
	}
	wg.Wait()
	return count
}

// EnumerateFromParallelInto computes exactly EnumerateFromInto using up to
// workers goroutines.  The rotated index space (position k enumerates
// processor (start+k) mod n) is sharded contiguously, so each shard's
// offset is again a sequential exclusive scan of per-shard counts and the
// output is bit-identical to the sequential form.
//
//lint:hotpath
func EnumerateFromParallelInto(ranks []int, flags []bool, start int, workers int) (count int) {
	n := len(flags)
	if workers <= 1 || n < parallelMin {
		return EnumerateFromInto(ranks, flags, start)
	}
	if len(ranks) != n {
		panic("scan: output length mismatch")
	}
	if workers > n {
		workers = n
	}
	start = ((start % n) + n) % n
	//lint:allow hotalloc O(workers) shard counts, engaged only for scans of parallelMin elements or more
	counts := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow hotalloc bounded parallel fan-out above parallelMin affects wall-clock only
		go func(w int) {
			defer wg.Done()
			lo, hi := shardBounds(w, workers, n)
			c := 0
			for k := lo; k < hi; k++ {
				i := start + k
				if i >= n {
					i -= n
				}
				if flags[i] {
					c++
				}
			}
			counts[w] = c
		}(w)
	}
	wg.Wait()
	count = 0
	for w, c := range counts {
		counts[w] = count
		count += c
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow hotalloc bounded parallel fan-out above parallelMin affects wall-clock only
		go func(w int) {
			defer wg.Done()
			lo, hi := shardBounds(w, workers, n)
			r := counts[w]
			for k := lo; k < hi; k++ {
				i := start + k
				if i >= n {
					i -= n
				}
				if flags[i] {
					ranks[i] = r
					r++
				} else {
					ranks[i] = -1
				}
			}
		}(w)
	}
	wg.Wait()
	return count
}

// PrefixSumParallelInto computes exactly PrefixSumInto using up to workers
// goroutines: per-shard sums, a sequential exclusive scan over them, then a
// parallel fill.  Integer addition is associative, so the result is
// bit-identical to the sequential form for any worker count.
//
//lint:hotpath
func PrefixSumParallelInto(out, xs []int, workers int) (total int) {
	n := len(xs)
	if workers <= 1 || n < parallelMin {
		return PrefixSumInto(out, xs)
	}
	if len(out) != n {
		panic("scan: output length mismatch")
	}
	if workers > n {
		workers = n
	}
	//lint:allow hotalloc O(workers) shard sums, engaged only for scans of parallelMin elements or more
	sums := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow hotalloc bounded parallel fan-out above parallelMin affects wall-clock only
		go func(w int) {
			defer wg.Done()
			lo, hi := shardBounds(w, workers, n)
			s := 0
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			sums[w] = s
		}(w)
	}
	wg.Wait()
	total = 0
	for w, s := range sums {
		sums[w] = total
		total += s
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow hotalloc bounded parallel fan-out above parallelMin affects wall-clock only
		go func(w int) {
			defer wg.Done()
			lo, hi := shardBounds(w, workers, n)
			s := sums[w]
			for i := lo; i < hi; i++ {
				out[i] = s
				s += xs[i]
			}
		}(w)
	}
	wg.Wait()
	return total
}

// Sum reduces xs by addition.
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Count returns the number of set flags, the reduction the trigger check
// performs every node-expansion cycle to obtain the active count A.
func Count(flags []bool) int {
	c := 0
	for _, f := range flags {
		if f {
			c++
		}
	}
	return c
}

// Max returns the maximum of xs and true, or zero and false for an empty
// slice.
func Max(xs []int) (int, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, true
}

// MinNonNeg returns the smallest non-negative element of xs and true, or
// zero and false when there is none.  Parallel IDA* uses it to combine the
// per-processor next-iteration cost bounds (-1 marking "none").
func MinNonNeg(xs []int) (int, bool) {
	best, ok := 0, false
	for _, x := range xs {
		if x < 0 {
			continue
		}
		if !ok || x < best {
			best, ok = x, true
		}
	}
	return best, ok
}

// Pair records that donor busy processor From sends work to idle processor
// To during a load-balancing phase.
type Pair struct {
	From int // donor (busy) processor id
	To   int // receiver (idle) processor id
}

// Rendezvous matches busy processors to idle processors one-on-one using
// the rendezvous allocation scheme described by Hillis: both sets are
// enumerated, and the busy processor with rank r is matched to the idle
// processor with the same rank r.  busyRanks and idleRanks must come from
// Enumerate or EnumerateFrom over slices of equal length.  When the two
// sets have different sizes only the first min(|busy|, |idle|) of each are
// matched, exactly as in the paper (if I > A, the remaining I-A idle
// processors receive no work).
func Rendezvous(busyRanks, idleRanks []int) []Pair {
	pairs, _ := RendezvousInto(nil, nil, busyRanks, idleRanks)
	return pairs
}

// RendezvousInto is Rendezvous appending the matched pairs onto pairs and
// using inv as the rank-inversion scratch; it returns both (possibly grown)
// slices so callers can reuse them across phases without allocating.
// Typical use: pairs, inv = RendezvousInto(pairs[:0], inv, busy, idle).
//
//lint:hotpath
func RendezvousInto(pairs []Pair, inv []int, busyRanks, idleRanks []int) ([]Pair, []int) {
	if len(busyRanks) != len(idleRanks) {
		panic("scan: rank slices of unequal length")
	}
	// Invert the idle enumeration: inv[r] = processor with rank r.
	maxRank := -1
	for _, r := range idleRanks {
		if r > maxRank {
			maxRank = r
		}
	}
	if cap(inv) < maxRank+1 {
		//lint:allow hotalloc rank-inversion scratch grows once and is reused through the caller's arena
		inv = make([]int, maxRank+1)
	}
	inv = inv[:maxRank+1]
	for i, r := range idleRanks {
		if r >= 0 {
			inv[r] = i
		}
	}
	for i, r := range busyRanks {
		if r >= 0 && r <= maxRank {
			//lint:allow hotalloc pairs append is amortised by the caller's reused arena slice
			pairs = append(pairs, Pair{From: i, To: inv[r]})
		}
	}
	return pairs, inv
}

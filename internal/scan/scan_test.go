package scan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrefixSum(t *testing.T) {
	cases := []struct {
		in   []int
		want []int
	}{
		{nil, []int{}},
		{[]int{5}, []int{0}},
		{[]int{1, 2, 3, 4}, []int{0, 1, 3, 6}},
		{[]int{0, 0, 7}, []int{0, 0, 0}},
		{[]int{-1, 2, -3}, []int{0, -1, 1}},
	}
	for _, c := range cases {
		got := PrefixSum(c.in)
		if len(got) != len(c.want) {
			t.Errorf("PrefixSum(%v) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("PrefixSum(%v) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestInclusivePrefixSum(t *testing.T) {
	got := InclusivePrefixSum([]int{1, 2, 3})
	want := []int{1, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("InclusivePrefixSum = %v, want %v", got, want)
		}
	}
}

// TestTreePrefixSumMatchesSequential property-checks the two prefix-sum
// implementations against each other over arbitrary inputs.
func TestTreePrefixSumMatchesSequential(t *testing.T) {
	f := func(xs []int) bool {
		seq := PrefixSum(xs)
		tree, _ := TreePrefixSum(xs)
		if len(seq) != len(tree) {
			return false
		}
		for i := range seq {
			if seq[i] != tree[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTreePrefixSumSteps checks the logarithmic parallel depth.
func TestTreePrefixSumSteps(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 9, 1024} {
		xs := make([]int, n)
		_, steps := TreePrefixSum(xs)
		// 2 * ceil(log2 n) steps for the up- and down-sweeps.
		logN := 0
		for s := 1; s < n; s <<= 1 {
			logN++
		}
		if want := 2 * logN; steps != want && n > 1 {
			t.Errorf("n=%d: steps=%d, want %d", n, steps, want)
		}
	}
}

func TestEnumerate(t *testing.T) {
	ranks, count := Enumerate([]bool{true, false, true, true, false})
	want := []int{0, -1, 1, 2, -1}
	if count != 3 {
		t.Fatalf("count=%d, want 3", count)
	}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks=%v, want %v", ranks, want)
		}
	}
}

func TestEnumerateFrom(t *testing.T) {
	flags := []bool{true, true, false, true}
	// Start at 2: order of set flags is 3, 0, 1.
	ranks, count := EnumerateFrom(flags, 2)
	if count != 3 {
		t.Fatalf("count=%d, want 3", count)
	}
	want := []int{1, 2, -1, 0}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks=%v, want %v", ranks, want)
		}
	}
	// Negative and overflowing starts wrap.
	r2, _ := EnumerateFrom(flags, -2) // same as start 2
	for i := range want {
		if r2[i] != want[i] {
			t.Fatalf("negative start: ranks=%v, want %v", r2, want)
		}
	}
	r3, _ := EnumerateFrom(flags, 6) // same as start 2
	for i := range want {
		if r3[i] != want[i] {
			t.Fatalf("wrapped start: ranks=%v, want %v", r3, want)
		}
	}
}

// TestEnumerateFromProperties property-checks that EnumerateFrom is a
// bijection onto 0..count-1 matching Enumerate's support.
func TestEnumerateFromProperties(t *testing.T) {
	f := func(flags []bool, start int) bool {
		ranks, count := EnumerateFrom(flags, start)
		seen := map[int]bool{}
		for i, r := range ranks {
			if flags[i] != (r >= 0) {
				return false
			}
			if r >= 0 {
				if r >= count || seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		return len(seen) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReductions(t *testing.T) {
	if Sum([]int{1, 2, 3}) != 6 {
		t.Error("Sum failed")
	}
	if Count([]bool{true, false, true}) != 2 {
		t.Error("Count failed")
	}
	if m, ok := Max([]int{3, 9, 1}); !ok || m != 9 {
		t.Error("Max failed")
	}
	if _, ok := Max(nil); ok {
		t.Error("Max on empty should report false")
	}
	if m, ok := MinNonNeg([]int{-1, 7, 3, -5}); !ok || m != 3 {
		t.Errorf("MinNonNeg = %d, want 3", m)
	}
	if _, ok := MinNonNeg([]int{-1, -2}); ok {
		t.Error("MinNonNeg on all-negative should report false")
	}
}

func TestRendezvous(t *testing.T) {
	busy := []bool{true, true, false, true, false}
	idle := []bool{false, false, true, false, true}
	busyRanks, _ := Enumerate(busy)
	idleRanks, _ := Enumerate(idle)
	pairs := Rendezvous(busyRanks, idleRanks)
	if len(pairs) != 2 {
		t.Fatalf("pairs=%v, want 2 pairs", pairs)
	}
	// busy rank 0 (proc 0) -> idle rank 0 (proc 2); busy rank 1 (proc 1)
	// -> idle rank 1 (proc 4); busy rank 2 (proc 3) unmatched.
	if pairs[0] != (Pair{From: 0, To: 2}) || pairs[1] != (Pair{From: 1, To: 4}) {
		t.Errorf("pairs=%v", pairs)
	}
}

func TestRendezvousPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Rendezvous([]int{0}, []int{0, 1})
}

// TestRendezvousProperties checks the one-on-one matching invariants on
// random busy/idle configurations: exactly min(|busy|, |idle|) pairs,
// donors distinct, receivers distinct, donors busy, receivers idle.
func TestRendezvousProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(64)
		busy := make([]bool, n)
		idle := make([]bool, n)
		for i := range busy {
			switch rng.Intn(3) {
			case 0:
				busy[i] = true
			case 1:
				idle[i] = true
			}
		}
		busyRanks, nb := Enumerate(busy)
		idleRanks, ni := Enumerate(idle)
		pairs := Rendezvous(busyRanks, idleRanks)
		want := nb
		if ni < want {
			want = ni
		}
		if len(pairs) != want {
			t.Fatalf("trial %d: %d pairs, want %d", trial, len(pairs), want)
		}
		froms := map[int]bool{}
		tos := map[int]bool{}
		for _, p := range pairs {
			if !busy[p.From] || !idle[p.To] {
				t.Fatalf("trial %d: invalid pair %v", trial, p)
			}
			if froms[p.From] || tos[p.To] {
				t.Fatalf("trial %d: duplicated endpoint in %v", trial, pairs)
			}
			froms[p.From] = true
			tos[p.To] = true
		}
	}
}

func BenchmarkPrefixSum(b *testing.B) {
	xs := make([]int, 8192)
	for i := range xs {
		xs[i] = i & 7
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PrefixSum(xs)
	}
}

func BenchmarkTreePrefixSum(b *testing.B) {
	xs := make([]int, 8192)
	for i := range xs {
		xs[i] = i & 7
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TreePrefixSum(xs)
	}
}

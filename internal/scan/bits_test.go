package scan

import (
	"math/rand"
	"testing"
)

// randomBits builds a Bits vector and the equivalent []bool with density d.
func randomBits(rng *rand.Rand, n int, d float64) (Bits, []bool) {
	b := NewBits(n)
	flags := make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < d {
			b.SetTo(i, true)
			flags[i] = true
		}
	}
	return b, flags
}

// TestBitsSetGet exercises SetTo in both directions across word
// boundaries.
func TestBitsSetGet(t *testing.T) {
	n := 131
	b := NewBits(n)
	for i := 0; i < n; i++ {
		b.SetTo(i, i%3 == 0)
	}
	for i := 0; i < n; i++ {
		if b.Get(i) != (i%3 == 0) {
			t.Fatalf("bit %d = %v", i, b.Get(i))
		}
	}
	// Overwriting set bits must clear them branch-free.
	for i := 0; i < n; i++ {
		b.SetTo(i, i%5 == 0)
	}
	for i := 0; i < n; i++ {
		if b.Get(i) != (i%5 == 0) {
			t.Fatalf("overwrite: bit %d = %v", i, b.Get(i))
		}
	}
}

// TestBitsReductionsMatchBools property-checks the word-level reductions
// against their []bool definitions at sizes around word boundaries.
func TestBitsReductionsMatchBools(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 63, 64, 65, 128, 200, 1024} {
		for _, d := range []float64{0, 0.01, 0.5, 1} {
			b, flags := randomBits(rng, n, d)
			if b.CountBits() != Count(flags) {
				t.Fatalf("n=%d d=%g: CountBits %d, Count %d", n, d, b.CountBits(), Count(flags))
			}
			if b.None() != (Count(flags) == 0) || b.Any() != (Count(flags) > 0) {
				t.Fatalf("n=%d d=%g: None/Any diverge", n, d)
			}
			got := make([]bool, n)
			b.FillBools(got)
			for i := range got {
				if got[i] != flags[i] {
					t.Fatalf("n=%d d=%g: FillBools[%d] = %v", n, d, i, got[i])
				}
			}
		}
	}
}

// TestComplementInto checks the derived idle flags: complement of the
// first n bits with the tail of the last word masked off, so the
// no-set-bits-beyond-n invariant survives.
func TestComplementInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 63, 64, 65, 130, 256} {
		src, flags := randomBits(rng, n, 0.4)
		dst := NewBits(n)
		ComplementInto(dst, src, n)
		for i := 0; i < n; i++ {
			if dst.Get(i) == flags[i] {
				t.Fatalf("n=%d: complement bit %d wrong", n, i)
			}
		}
		// The tail of the last word must stay zero.
		if r := uint(n) & 63; r != 0 {
			if dst[len(dst)-1]>>r != 0 {
				t.Fatalf("n=%d: set bits beyond n", n)
			}
		}
		if dst.CountBits() != n-src.CountBits() {
			t.Fatalf("n=%d: complement popcount %d, want %d", n, dst.CountBits(), n-src.CountBits())
		}
	}
}

// TestEnumerateBitsMatchesBool property-checks both bitset enumerations
// against the []bool forms they replace — identical ranks, identical
// counts, including the rotated start of the GP matcher.
func TestEnumerateBitsMatchesBool(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(300)
		b, flags := randomBits(rng, n, []float64{0.02, 0.3, 0.9}[rng.Intn(3)])

		gotRanks := make([]int, n)
		wantRanks := make([]int, n)
		gotC := EnumerateBitsInto(gotRanks, b, n)
		wantC := EnumerateInto(wantRanks, flags)
		if gotC != wantC {
			t.Fatalf("n=%d: count %d, want %d", n, gotC, wantC)
		}
		for i := range wantRanks {
			if gotRanks[i] != wantRanks[i] {
				t.Fatalf("n=%d: rank[%d] = %d, want %d", n, i, gotRanks[i], wantRanks[i])
			}
		}

		start := rng.Intn(2*n) - n // exercise negative and >= n starts
		gotC = EnumerateBitsFromInto(gotRanks, b, start, n)
		wantC = EnumerateFromInto(wantRanks, flags, ((start%n)+n)%n)
		if gotC != wantC {
			t.Fatalf("n=%d start=%d: count %d, want %d", n, start, gotC, wantC)
		}
		for i := range wantRanks {
			if gotRanks[i] != wantRanks[i] {
				t.Fatalf("n=%d start=%d: rank[%d] = %d, want %d", n, start, i, gotRanks[i], wantRanks[i])
			}
		}
	}
}

// TestEnumerateBitsZeroAlloc pins the hot-path contract: enumeration into
// caller storage allocates nothing.
func TestEnumerateBitsZeroAlloc(t *testing.T) {
	n := 512
	b := NewBits(n)
	for i := 0; i < n; i += 7 {
		b.SetTo(i, true)
	}
	ranks := make([]int, n)
	allocs := testing.AllocsPerRun(100, func() {
		EnumerateBitsInto(ranks, b, n)
		EnumerateBitsFromInto(ranks, b, 137, n)
	})
	if allocs > 0 {
		t.Errorf("bitset enumeration allocates %.1f times", allocs)
	}
}

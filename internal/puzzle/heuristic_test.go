package puzzle

import (
	"math/rand"
	"testing"

	"simdtree/internal/search"
)

func TestLinearConflictGoalIsZero(t *testing.T) {
	if lc := LinearConflict(Goal().Tiles); lc != 0 {
		t.Errorf("LC(goal) = %d, want 0", lc)
	}
}

func TestLinearConflictKnownCases(t *testing.T) {
	// Swap tiles 1 and 2 within the top row (both in goal row 0, order
	// reversed): one row conflict = +2.  The swap also changes
	// permutation parity, so this layout is merely a heuristic probe,
	// not necessarily reachable — LC is defined for any layout.
	tiles := Goal().Tiles
	tiles[1], tiles[2] = tiles[2], tiles[1]
	if lc := LinearConflict(tiles); lc != 2 {
		t.Errorf("one reversed row pair: LC = %d, want 2", lc)
	}
	// Swap tiles 4 and 8 (both in goal column 0, rows 1 and 2): one
	// column conflict.
	tiles = Goal().Tiles
	tiles[4], tiles[8] = tiles[8], tiles[4]
	if lc := LinearConflict(tiles); lc != 2 {
		t.Errorf("one reversed column pair: LC = %d, want 2", lc)
	}
	// Fully reversed top row (1,2,3 -> 3,2,1): three pairwise conflicts.
	tiles = Goal().Tiles
	tiles[1], tiles[3] = tiles[3], tiles[1]
	if lc := LinearConflict(tiles); lc != 2*2 {
		// (3,2), (3,1) conflict via tile 3; (2,1) conflict... swapped 1
		// and 3 only: pairs (3,2), (3,1), (2,1): 3 and 2 reversed, 3 and
		// 1 reversed, 2 and 1 in order -> 2 conflicts.
		t.Errorf("reversed outer pair: LC = %d, want 4", lc)
	}
}

// TestLCAdmissibleOnScrambles: g + MD + LC never exceeds the known
// solution-length upper bound (the scramble walk length).
func TestLCAdmissibleOnScrambles(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		k := rng.Intn(40)
		n := Scramble(rng.Uint64(), k)
		if h := int(n.H) + LinearConflict(n.Tiles); h > k {
			t.Fatalf("MD+LC = %d exceeds scramble length %d: inadmissible", h, k)
		}
	}
}

// TestLCConsistent: the bound changes by at most 1 per unit-cost move
// (f is monotone non-decreasing along edges).
func TestLCConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := Scramble(rng.Uint64(), rng.Intn(60))
		d := NewDomainLC(n)
		fn := d.F(n)
		for _, c := range d.Domain.Expand(n, nil) {
			if d.F(c) < fn {
				t.Fatalf("f decreased along an edge: %d -> %d (inconsistent)", fn, d.F(c))
			}
		}
	}
}

// TestLCFindsSameOptimumWithFewerNodes: on the same instance, IDA* with
// MD+LC reaches the same optimal bound as plain MD while expanding no
// more nodes.
func TestLCFindsSameOptimumWithFewerNodes(t *testing.T) {
	for seed := uint64(30); seed < 36; seed++ {
		inst := Scramble(seed, 24)
		md := search.IDAStar[Node](NewDomain(inst), 0)
		lc := search.IDAStar[Node](NewDomainLC(inst), 0)
		if md.Bound != lc.Bound {
			t.Errorf("seed %d: MD bound %d, LC bound %d", seed, md.Bound, lc.Bound)
		}
		if lc.Expanded > md.Expanded {
			t.Errorf("seed %d: LC expanded more (%d) than MD (%d)", seed, lc.Expanded, md.Expanded)
		}
	}
}

func TestSolveProducesOptimalVerifiedPaths(t *testing.T) {
	for seed := uint64(40); seed < 48; seed++ {
		inst := Scramble(seed, 22)
		moves, bound, ok := Solve(inst, 0)
		if !ok {
			t.Fatalf("seed %d: no solution", seed)
		}
		if len(moves) != bound {
			t.Errorf("seed %d: path length %d != bound %d", seed, len(moves), bound)
		}
		end, legal := Apply(inst, moves)
		if !legal {
			t.Fatalf("seed %d: illegal move in solution", seed)
		}
		if end.H != 0 {
			t.Errorf("seed %d: path does not reach the goal", seed)
		}
		// Cross-check optimality against the IDA* node-count search.
		ref := search.IDAStar[Node](NewDomainLC(inst), 0)
		if bound != ref.Bound {
			t.Errorf("seed %d: Solve bound %d, IDA* bound %d", seed, bound, ref.Bound)
		}
	}
}

func TestSolveAtGoal(t *testing.T) {
	moves, bound, ok := Solve(Goal(), 0)
	if !ok || bound != 0 || len(moves) != 0 {
		t.Errorf("Solve(goal) = %v, %d, %v", moves, bound, ok)
	}
}

func TestSolveRespectsMaxBound(t *testing.T) {
	inst := Scramble(50, 40)
	if _, _, ok := Solve(inst, 4); ok {
		t.Error("Solve found a solution within an impossible bound")
	}
}

func TestApplyRejectsIllegalMoves(t *testing.T) {
	// Blank at the top-left corner cannot move up.
	if _, ok := Apply(Goal(), []uint8{MoveUp}); ok {
		t.Error("illegal move accepted")
	}
}

func BenchmarkLinearConflict(b *testing.B) {
	n := Scramble(7, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LinearConflict(n.Tiles)
	}
}

func BenchmarkSolve(b *testing.B) {
	inst := Scramble(7, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := Solve(inst, 0); !ok {
			b.Fatal("unsolved")
		}
	}
}

package puzzle

// Linear-conflict enhancement (Hansson, Mayer & Yung): two tiles that sit
// in their goal row (or column) but in reversed order must pass each
// other, costing at least two extra moves beyond their Manhattan
// distances.  MD + LC remains admissible and consistent, so IDA* stays
// optimal while expanding fewer nodes — a drop-in stronger heuristic for
// users who care about W more than per-node cost.

// LinearConflict returns the linear-conflict correction for a layout: for
// every row and column, two moves per tile in the minimum set whose
// removal leaves the line conflict-free.  Counting raw conflicting pairs
// would overestimate (one tile can block several others yet needs to
// step aside only once), breaking admissibility and consistency; the
// minimum-removal formulation keeps both, and with at most four tiles
// per line it is computed exactly by subset enumeration.
func LinearConflict(tiles [Cells]uint8) int {
	removals := 0
	// Rows: tiles whose goal position lies in the same row.
	for r := 0; r < Side; r++ {
		var goals [Side]int
		k := 0
		for i := 0; i < Side; i++ {
			a := tiles[r*Side+i]
			if a != 0 && int(a)/Side == r {
				goals[k] = int(a) % Side
				k++
			}
		}
		removals += minRemovals(goals[:k])
	}
	// Columns, symmetrically.
	for c := 0; c < Side; c++ {
		var goals [Side]int
		k := 0
		for i := 0; i < Side; i++ {
			a := tiles[i*Side+c]
			if a != 0 && int(a)%Side == c {
				goals[k] = int(a) / Side
				k++
			}
		}
		removals += minRemovals(goals[:k])
	}
	return 2 * removals
}

// minRemovals returns the smallest number of elements to delete from
// goals so the remainder is non-decreasing (i.e. no reversed pair).
// Equivalently, len - longest increasing subsequence; with at most four
// elements, subset enumeration is cheapest.
func minRemovals(goals []int) int {
	n := len(goals)
	if n < 2 {
		return 0
	}
	best := n - 1 // keeping one element always works
	for keep := 1; keep < 1<<n; keep++ {
		prev := -1
		ok := true
		kept := 0
		for i := 0; i < n; i++ {
			if keep&(1<<i) == 0 {
				continue
			}
			if goals[i] < prev {
				ok = false
				break
			}
			prev = goals[i]
			kept++
		}
		if ok && n-kept < best {
			best = n - kept
		}
	}
	return best
}

// LCDomain is the 15-puzzle domain with the Manhattan-distance +
// linear-conflict bound.  Expansion is identical to Domain (H in the
// nodes stays the incrementally maintained Manhattan distance); only the
// f-bound used for pruning gets stronger.
type LCDomain struct {
	Domain
}

// NewDomainLC returns the linear-conflict search domain rooted at start.
func NewDomainLC(start Node) *LCDomain {
	return &LCDomain{Domain{Start: start}}
}

// F implements search.CostDomain with the tighter bound g + MD + LC.
func (d *LCDomain) F(n Node) int {
	return int(n.G) + int(n.H) + LinearConflict(n.Tiles)
}

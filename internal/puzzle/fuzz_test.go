package puzzle

import "testing"

// FuzzFromTiles feeds arbitrary boards to the validator: it must accept
// exactly the solvable permutations and never panic.
func FuzzFromTiles(f *testing.F) {
	goal := Goal()
	f.Add(goal.Tiles[:])
	scr := Scramble(9, 40)
	f.Add(scr.Tiles[:])
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) != Cells {
			return
		}
		var tiles [Cells]uint8
		copy(tiles[:], raw)
		n, err := FromTiles(tiles)
		if err != nil {
			return
		}
		// Accepted boards are valid permutations with a consistent H.
		if int(n.H) != manhattan(n.Tiles) {
			t.Errorf("H=%d inconsistent with board", n.H)
		}
		if !Solvable(n.Tiles) {
			t.Error("FromTiles accepted an unsolvable board")
		}
		// And expansion from them stays well-formed.
		d := NewDomain(n)
		for _, c := range d.Expand(n, nil) {
			if int(c.H) != manhattan(c.Tiles) {
				t.Error("child H inconsistent")
			}
		}
	})
}

package puzzle

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"simdtree/internal/search"
)

func TestGoal(t *testing.T) {
	g := Goal()
	if g.H != 0 || g.Blank != 0 || g.G != 0 {
		t.Fatalf("goal state malformed: %+v", g)
	}
	d := NewDomain(g)
	if !d.Goal(g) {
		t.Error("goal state not recognised")
	}
	if d.F(g) != 0 {
		t.Errorf("F(goal) = %d, want 0", d.F(g))
	}
}

func TestFromTilesValidation(t *testing.T) {
	var tiles [Cells]uint8
	for i := range tiles {
		tiles[i] = uint8(i)
	}
	if _, err := FromTiles(tiles); err != nil {
		t.Errorf("goal layout rejected: %v", err)
	}
	// Duplicate tile.
	bad := tiles
	bad[1] = 2
	if _, err := FromTiles(bad); err == nil {
		t.Error("duplicate tile accepted")
	}
	// Swapping two tiles flips solvability.
	swapped := tiles
	swapped[1], swapped[2] = swapped[2], swapped[1]
	if _, err := FromTiles(swapped); err == nil {
		t.Error("unsolvable layout accepted")
	}
}

func TestSolvableParity(t *testing.T) {
	var tiles [Cells]uint8
	for i := range tiles {
		tiles[i] = uint8(i)
	}
	if !Solvable(tiles) {
		t.Fatal("goal must be solvable")
	}
	// A single transposition of two tiles makes it unsolvable.
	tiles[5], tiles[6] = tiles[6], tiles[5]
	if Solvable(tiles) {
		t.Error("odd permutation reported solvable")
	}
	// A second transposition restores solvability.
	tiles[9], tiles[10] = tiles[10], tiles[9]
	if !Solvable(tiles) {
		t.Error("even permutation reported unsolvable")
	}
}

// TestScrambleAlwaysSolvable property-checks that random walks stay in the
// solvable half of the position space.
func TestScrambleAlwaysSolvable(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		n := Scramble(seed, int(steps%60))
		return Solvable(n.Tiles) && n.G == 0 && n.Prev == NoMove
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestIncrementalManhattan property-checks that the H maintained move by
// move equals the Manhattan distance recomputed from scratch.
func TestIncrementalManhattan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := NewDomain(Goal())
	for trial := 0; trial < 300; trial++ {
		n := Scramble(rng.Uint64(), rng.Intn(80))
		if int(n.H) != manhattan(n.Tiles) {
			t.Fatalf("incremental H=%d, full recompute=%d for\n%v", n.H, manhattan(n.Tiles), n)
		}
		// And one more level of successors.
		for _, c := range d.Expand(n, nil) {
			if int(c.H) != manhattan(c.Tiles) {
				t.Fatalf("child H=%d, recompute=%d", c.H, manhattan(c.Tiles))
			}
		}
	}
}

// TestHeuristicAdmissibleAndConsistent checks h(goal)=0, h drops by at
// most 1 per move (consistency), and never exceeds the true distance on
// instances with a known upper bound (admissibility witness: a scramble of
// k moves has optimal solution <= k, so h(root) <= k).
func TestHeuristicAdmissibleAndConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := NewDomain(Goal())
	for trial := 0; trial < 200; trial++ {
		k := rng.Intn(40)
		n := Scramble(rng.Uint64(), k)
		if int(n.H) > k {
			t.Fatalf("h(root)=%d exceeds scramble length %d: heuristic inadmissible", n.H, k)
		}
		for _, c := range d.Expand(n, nil) {
			dh := int(c.H) - int(n.H)
			if dh < -1 || dh > 1 {
				t.Fatalf("h changed by %d on one move: inconsistent", dh)
			}
		}
	}
}

func TestExpandAvoidsInverse(t *testing.T) {
	d := NewDomain(Goal())
	root := d.Root()
	children := d.Expand(root, nil)
	// Blank at corner: 2 legal moves from the root.
	if len(children) != 2 {
		t.Fatalf("root has %d successors, want 2", len(children))
	}
	for _, c := range children {
		grand := d.Expand(c, nil)
		for _, g := range grand {
			if g.Tiles == root.Tiles {
				t.Error("expansion generated the parent (inverse move not pruned)")
			}
		}
		// All non-inverse legal moves are present: at most 3.
		if len(grand) > 3 {
			t.Errorf("non-root node has %d successors, want <= 3", len(grand))
		}
	}
}

func TestExpandGIncrements(t *testing.T) {
	d := NewDomain(Goal())
	for _, c := range d.Expand(d.Root(), nil) {
		if c.G != 1 {
			t.Errorf("child G=%d, want 1", c.G)
		}
	}
}

// TestIDAStarOptimality verifies that IDA* finds solutions of length at
// most the scramble walk, and exactly h(root) when the heuristic is tight.
func TestIDAStarOptimality(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		k := 14
		inst := Scramble(seed, k)
		d := NewDomain(inst)
		r := search.IDAStar[Node](d, 0)
		if r.Goals == 0 {
			t.Fatalf("seed %d: no solution found", seed)
		}
		if r.Bound > k {
			t.Errorf("seed %d: optimal bound %d exceeds scramble length %d", seed, r.Bound, k)
		}
		if r.Bound < int(inst.H) {
			t.Errorf("seed %d: bound %d below heuristic %d (inadmissible search)", seed, r.Bound, inst.H)
		}
		if r.Bound%2 != int(inst.H)%2 {
			t.Errorf("seed %d: bound parity %d does not match heuristic parity %d", seed, r.Bound, inst.H)
		}
	}
}

// TestSolvedInstantly checks the degenerate start-at-goal search.
func TestSolvedInstantly(t *testing.T) {
	r := search.IDAStar[Node](NewDomain(Goal()), 0)
	if r.Bound != 0 || r.Goals == 0 {
		t.Errorf("goal-start search: bound=%d goals=%d", r.Bound, r.Goals)
	}
}

func TestString(t *testing.T) {
	s := Goal().String()
	if !strings.Contains(s, "__") {
		t.Error("blank not rendered")
	}
	if !strings.Contains(s, "15") {
		t.Error("tile 15 not rendered")
	}
	if strings.Count(s, "\n") != Side {
		t.Errorf("expected %d lines, got %q", Side, s)
	}
}

func TestScrambleDeterminism(t *testing.T) {
	a := Scramble(1234, 50)
	b := Scramble(1234, 50)
	if a != b {
		t.Error("Scramble is not deterministic")
	}
	c := Scramble(1235, 50)
	if a == c {
		t.Error("different seeds produced identical instances")
	}
}

// TestBoundedSearchMonotone checks that the bounded search size grows with
// the bound — the property the workload calibration relies on.
func TestBoundedSearchMonotone(t *testing.T) {
	d := NewDomain(Scramble(5, 30))
	prev := int64(-1)
	bound := d.F(d.Root())
	for i := 0; i < 4; i++ {
		b := search.NewBounded[Node](d, bound)
		r := search.DFS[Node](b)
		if r.Expanded < prev {
			t.Errorf("bounded search shrank: %d -> %d at bound %d", prev, r.Expanded, bound)
		}
		prev = r.Expanded
		next, ok := b.NextBound()
		if !ok {
			break
		}
		bound = next
	}
}

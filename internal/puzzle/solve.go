package puzzle

// Solve runs serial IDA* with path reconstruction and returns an optimal
// move sequence from start to the goal (moves name the direction the
// blank slides).  It is the library's user-facing solver: the SIMD engine
// answers "how much work, how fast in parallel"; Solve answers "what are
// the moves".  ok is false only if maxBound is exceeded before a solution
// appears.
func Solve(start Node, maxBound int) (moves []uint8, bound int, ok bool) {
	start.G = 0
	start.Prev = NoMove
	bound = int(start.H) + LinearConflict(start.Tiles)
	if maxBound <= 0 {
		maxBound = 80 // no 15-puzzle position needs more
	}
	path := make([]uint8, 0, maxBound)
	for bound <= maxBound {
		next, found := solveDFS(start, bound, &path)
		if found {
			out := make([]uint8, len(path))
			copy(out, path)
			return out, bound, true
		}
		if next <= bound {
			return nil, bound, false // exhausted without a solution
		}
		bound = next
	}
	return nil, bound, false
}

// solveDFS is the bounded depth-first search of one IDA* iteration; it
// reports the smallest pruned f and whether a solution was found, with
// the move path accumulating in *path.
func solveDFS(n Node, bound int, path *[]uint8) (nextBound int, found bool) {
	f := int(n.G) + int(n.H) + LinearConflict(n.Tiles)
	if f > bound {
		return f, false
	}
	if n.H == 0 {
		return f, true
	}
	nextBound = int(^uint(0) >> 1) // max int
	for m := uint8(0); m < 4; m++ {
		if n.Prev != NoMove && m == inverse[n.Prev] {
			continue
		}
		child, legal := apply(n, m)
		if !legal {
			continue
		}
		*path = append(*path, m)
		nb, ok := solveDFS(child, bound, path)
		if ok {
			return nb, true
		}
		*path = (*path)[:len(*path)-1]
		if nb < nextBound {
			nextBound = nb
		}
	}
	return nextBound, false
}

// Apply replays a move sequence from n, reporting the final position and
// whether every move was legal.  It verifies solver output and lets
// examples animate solutions.
func Apply(n Node, moves []uint8) (Node, bool) {
	for _, m := range moves {
		next, ok := apply(n, m)
		if !ok {
			return n, false
		}
		n = next
	}
	return n, true
}

package report

import (
	"strings"
	"testing"
)

func TestDocStructure(t *testing.T) {
	d := New("Reproduction")
	d.Section("Table 2")
	d.Para("Static triggering on %d processors.", 8192)
	d.Table([]string{"W", "x", "E"}, [][]string{
		{"941852", "0.50", "0.52"},
		{"3055171", "0.60"}, // short row padded
	})
	d.Verdict("matches the paper's shape")
	d.Code("chart body\n")
	out := d.String()

	for _, frag := range []string{
		"# Reproduction",
		"## Table 2",
		"8192 processors",
		"| W | x | E |",
		"|---|---|---|",
		"| 941852 | 0.50 | 0.52 |",
		"| 3055171 | 0.60 |  |",
		"**Verdict:** matches",
		"```\nchart body\n```",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("document missing %q:\n%s", frag, out)
		}
	}
}

func TestEscaping(t *testing.T) {
	d := New("t")
	d.Table([]string{"a|b"}, [][]string{{"x\ny"}})
	out := d.String()
	if !strings.Contains(out, `a\|b`) {
		t.Error("pipe not escaped in header")
	}
	if strings.Contains(out, "x\ny") {
		t.Error("newline not flattened in cell")
	}
}

func TestEmptyTableIgnored(t *testing.T) {
	d := New("t")
	d.Table(nil, nil)
	if strings.Contains(d.String(), "|") {
		t.Error("empty table emitted")
	}
}

func TestSubsection(t *testing.T) {
	d := New("t")
	d.Subsection("panel a")
	if !strings.Contains(d.String(), "### panel a") {
		t.Error("subsection missing")
	}
}

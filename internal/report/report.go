// Package report builds the markdown experiment report (EXPERIMENTS.md):
// a document with one section per reproduced table and figure, each
// holding a measured-results table and a paper-vs-measured verdict.  The
// experiment harness fills it from typed experiment rows, so the report
// regenerates from a single command.
package report

import (
	"fmt"
	"strings"
)

// Doc is a markdown document under construction.
type Doc struct {
	b strings.Builder
}

// New starts a document with a top-level title.
func New(title string) *Doc {
	d := &Doc{}
	fmt.Fprintf(&d.b, "# %s\n", title)
	return d
}

// Para appends a heading-less paragraph.
func (d *Doc) Para(format string, args ...any) {
	fmt.Fprintf(&d.b, "\n%s\n", fmt.Sprintf(format, args...))
}

// Section appends a second-level heading.
func (d *Doc) Section(heading string) {
	fmt.Fprintf(&d.b, "\n## %s\n", heading)
}

// Subsection appends a third-level heading.
func (d *Doc) Subsection(heading string) {
	fmt.Fprintf(&d.b, "\n### %s\n", heading)
}

// Table appends a markdown table.  Every row must have len(header) cells;
// shorter rows are padded, longer ones truncated.
func (d *Doc) Table(header []string, rows [][]string) {
	if len(header) == 0 {
		return
	}
	d.b.WriteString("\n|")
	for _, h := range header {
		d.b.WriteString(" " + escape(h) + " |")
	}
	d.b.WriteString("\n|")
	for range header {
		d.b.WriteString("---|")
	}
	d.b.WriteString("\n")
	for _, row := range rows {
		d.b.WriteString("|")
		for i := range header {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			d.b.WriteString(" " + escape(cell) + " |")
		}
		d.b.WriteString("\n")
	}
}

// Verdict appends a bolded paper-vs-measured verdict line.
func (d *Doc) Verdict(format string, args ...any) {
	fmt.Fprintf(&d.b, "\n**Verdict:** %s\n", fmt.Sprintf(format, args...))
}

// Code appends a fenced code block (used for the ASCII figure panels).
func (d *Doc) Code(body string) {
	fmt.Fprintf(&d.b, "\n```\n%s```\n", strings.TrimRight(body, "\n")+"\n")
}

// String returns the assembled markdown.
func (d *Doc) String() string { return d.b.String() }

// escape keeps table cells from breaking markdown structure.
func escape(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	return strings.ReplaceAll(s, "\n", " ")
}

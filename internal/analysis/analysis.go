// Package analysis implements the paper's closed-form scalability results:
// the upper bounds on the number of load-balancing phases V(P) (Appendices
// A and B), the optimal static trigger xo (equation 18), the modelled
// efficiency curves (equations 12 and 15), and the isoefficiency functions
// of Table 6.  It also extracts experimental isoefficiency curves (Figures
// 4 and 7) from grids of measured (P, W, E) samples.
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// LogSplit returns log base 1/(1-alpha) of w — the number of alpha-splits
// needed to reduce a work piece of size w below one unit (Appendix A).
// alpha must lie in (0, 1).
func LogSplit(w, alpha float64) float64 {
	if w <= 1 {
		return 0
	}
	return math.Log(w) / math.Log(1/(1-alpha))
}

// VBoundGP is the worst-case number of load-balancing phases after which
// every busy processor has donated at least once under GP matching with
// static threshold x: ceil(1/(1-x)) (Section 4.1).
func VBoundGP(x float64) float64 {
	if x >= 1 {
		return math.Inf(1)
	}
	// The epsilon guards against 1/(1-x) landing just above an integer
	// through floating-point noise (e.g. x=0.9 giving 10.000000000000002).
	return math.Ceil(1/(1-x) - 1e-9)
}

// VBoundNGP is the corresponding worst-case bound for nGP matching:
// log^((2x-1)/(1-x)) W in base 1/(1-alpha) for x > 0.5, and 1 otherwise
// (Appendix B, equation 23).
func VBoundNGP(x, w, alpha float64) float64 {
	if x <= 0.5 {
		return 1
	}
	if x >= 1 {
		return math.Inf(1)
	}
	k := (2*x - 1) / (1 - x)
	return math.Pow(LogSplit(w, alpha), k)
}

// OptimalStaticTrigger evaluates equation 18:
//
//	xo = 1 / (sqrt(P/W * log_{1/(1-alpha)} W * tlb/Ucalc) + 1)
//
// the static threshold that maximises modelled efficiency for GP matching.
// ratio is tlb/Ucalc (13/30 for the paper's CM-2 runs).
func OptimalStaticTrigger(w, p, ratio, alpha float64) float64 {
	if w <= 1 || p <= 0 || ratio <= 0 {
		return 1
	}
	inner := p / w * LogSplit(w, alpha) * ratio
	return 1 / (math.Sqrt(inner) + 1)
}

// ModelEfficiency evaluates the modelled efficiency of a static-trigger
// scheme (equations 12 and 15):
//
//	E = 1 / ( 1/(x+delta) + P * V * log_{1/(1-alpha)}W * tlb / (W*Ucalc) )
//
// where V is the scheme's phase bound (VBoundGP or VBoundNGP), delta the
// average active-fraction surplus over x (0 is the paper's conservative
// choice), and ratio = tlb/Ucalc.  The total phase count V * logW is
// clamped at the number of node-expansion cycles W/((x+delta)*P) — the
// paper's Section 4.2 saturation remark: "the number of load balancing
// cycles ... are bounded from above by the number of node expansion
// cycles".
func ModelEfficiency(x, delta, w, p, v, ratio, alpha float64) float64 {
	if x+delta <= 0 {
		return 0
	}
	phases := v * LogSplit(w, alpha)
	if cycles := w / ((x + delta) * p); phases > cycles {
		phases = cycles
	}
	denom := 1/(x+delta) + p*phases*ratio/w
	if denom <= 0 {
		return 0
	}
	return 1 / denom
}

// RequiredW inverts the efficiency model: the smallest problem size W
// that sustains efficiency e on p processors under matcher ("GP" or
// "nGP") with static threshold x, cost ratio tlb/Ucalc and splitting
// quality alpha.  It reports false when the target is unreachable (the
// model caps efficiency at x+delta with delta = 0 here, minus the
// balancing overhead).  This is the capacity-planning question the
// isoefficiency analysis answers: "how big must my problem be?"
func RequiredW(e, p float64, matcher string, x, ratio, alpha float64) (float64, bool) {
	if e <= 0 || e >= x {
		return 0, false
	}
	eff := func(w float64) float64 {
		v := VBoundGP(x)
		if matcher == "nGP" {
			v = VBoundNGP(x, w, alpha)
		}
		return ModelEfficiency(x, 0, w, p, v, ratio, alpha)
	}
	lo, hi := 2.0, 2.0
	for iter := 0; eff(hi) < e; iter++ {
		hi *= 4
		if iter > 120 {
			return 0, false // not reachable within any sane problem size
		}
	}
	for iter := 0; iter < 200 && hi/lo > 1.0001; iter++ {
		mid := math.Sqrt(lo * hi)
		if eff(mid) < e {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, true
}

// Iso is a symbolic isoefficiency function W = O(P^PPower * log^LogPower P).
type Iso struct {
	PPower   float64
	LogPower float64
}

// String renders the isoefficiency in the paper's O-notation.
func (i Iso) String() string {
	p := "P"
	//lint:allow floateq powers are assigned from exact literals (tlbPowers), never computed
	if i.PPower != 1 {
		p = fmt.Sprintf("P^%.2g", i.PPower)
	}
	switch {
	case i.LogPower == 0:
		return fmt.Sprintf("O(%s)", p)
	//lint:allow floateq log powers are sums of exact literals; 1 is representable exactly
	case i.LogPower == 1:
		return fmt.Sprintf("O(%s log P)", p)
	default:
		return fmt.Sprintf("O(%s log^%.3g P)", p, i.LogPower)
	}
}

// Eval returns the isoefficiency function's value at machine size p (up to
// its hidden constant, taken as 1).
func (i Iso) Eval(p float64) float64 {
	if p < 2 {
		p = 2
	}
	return math.Pow(p, i.PPower) * math.Pow(math.Log2(p), i.LogPower)
}

// tlbPowers returns the (P-power, log-power) of the load-balancing cost
// tlb on the named topology (Section 3.3): hypercube O(log^2 P), mesh
// O(sqrt P), cm2/crossbar O(1).
func tlbPowers(topoName string) (pPow, logPow float64, err error) {
	switch topoName {
	case "hypercube":
		return 0, 2, nil
	case "mesh":
		return 0.5, 0, nil
	case "cm2", "crossbar":
		return 0, 0, nil
	}
	return 0, 0, fmt.Errorf("analysis: unknown topology %q", topoName)
}

// IsoStatic returns the isoefficiency function of <matcher>-S^x on the
// named topology, from the paper's master relation W = O(P*V(P)*logW*tlb)
// (equation 10 generalised to non-constant tlb).  For nGP the V(P) bound
// contributes log^((2x-1)/(1-x)) P extra (approximating log W by log P, as
// the paper does below equation 9).  With the CM-2's constant-cost
// communication this reproduces the O(P log P) result of Sections 4.1-4.2;
// with hypercube and mesh costs it reproduces Table 6.
func IsoStatic(matcher string, x float64, topoName string) (Iso, error) {
	pPow, logPow, err := tlbPowers(topoName)
	if err != nil {
		return Iso{}, err
	}
	iso := Iso{PPower: 1 + pPow, LogPower: 1 + logPow}
	switch matcher {
	case "GP":
	case "nGP":
		if x > 0.5 {
			iso.LogPower += (2*x - 1) / (1 - x)
		}
	default:
		return Iso{}, fmt.Errorf("analysis: unknown matcher %q", matcher)
	}
	return iso, nil
}

// Table6Row is one cell row of the paper's Table 6.
type Table6Row struct {
	Topology string
	NGP      string // nGP-S^x column (x as a symbolic parameter)
	GP       string // GP-S^x column
}

// Table6 reproduces the paper's Table 6 symbolically (for x >= 0.5): the
// isoefficiencies of the two matching schemes on hypercube and mesh.
func Table6() []Table6Row {
	return []Table6Row{
		{
			Topology: "hypercube",
			NGP:      "O(P log^((2x-1)/(1-x)+3) P)",
			GP:       "O(P log^3 P)",
		},
		{
			Topology: "mesh",
			NGP:      "O(P^1.5 log^((2x-1)/(1-x)+1) P)",
			GP:       "O(P^1.5 log P)",
		},
		{
			Topology: "cm2",
			NGP:      "O(P log^((2x-1)/(1-x)+1) P)",
			GP:       "O(P log P)",
		},
	}
}

// Sample is one experimental measurement: machine size, problem size, and
// the efficiency the run achieved.
type Sample struct {
	P int
	W int64
	E float64
}

// Point is one point of an experimental isoefficiency curve.
type Point struct {
	P int
	W float64 // smallest problem size sustaining the target efficiency at P
}

// IsoCurves extracts experimental isoefficiency curves from a grid of
// samples, as the paper did for Figures 4 and 7: for each target
// efficiency level and each machine size, the smallest W whose measured
// efficiency reaches the level (log-linearly interpolated between the
// bracketing samples).  Machine sizes whose entire sample column stays
// below a level are absent from that level's curve.
func IsoCurves(samples []Sample, levels []float64) map[float64][]Point {
	// Group by P, sort each column by W.
	byP := map[int][]Sample{}
	for _, s := range samples {
		byP[s.P] = append(byP[s.P], s)
	}
	var ps []int
	for p := range byP {
		ps = append(ps, p)
		sort.Slice(byP[p], func(i, j int) bool { return byP[p][i].W < byP[p][j].W })
	}
	sort.Ints(ps)

	out := make(map[float64][]Point, len(levels))
	for _, level := range levels {
		var curve []Point
		for _, p := range ps {
			col := byP[p]
			w, ok := interpolateW(col, level)
			if ok {
				curve = append(curve, Point{P: p, W: w})
			}
		}
		out[level] = curve
	}
	return out
}

// interpolateW finds the smallest W in a (sorted) sample column whose
// efficiency reaches level, interpolating log W linearly in E between the
// first bracketing pair.  Efficiency is treated as monotone in W, which
// holds for these schemes up to experimental noise; non-monotone dips are
// skipped by scanning for the first crossing.
func interpolateW(col []Sample, level float64) (float64, bool) {
	for i, s := range col {
		if s.E < level {
			continue
		}
		if i == 0 || col[i-1].E >= level {
			return float64(s.W), true
		}
		lo, hi := col[i-1], s
		t := (level - lo.E) / (hi.E - lo.E)
		lw := math.Log(float64(lo.W)) + t*(math.Log(float64(hi.W))-math.Log(float64(lo.W)))
		return math.Exp(lw), true
	}
	return 0, false
}

// FitPLogP fits the curve W = c * P*log2(P) to points by least squares on
// c, returning c and the coefficient of determination R^2 (1 means the
// curve is exactly O(P log P)-shaped, the paper's verdict for GP).
func FitPLogP(points []Point) (c, r2 float64) {
	if len(points) == 0 {
		return 0, 0
	}
	var sxy, sxx float64
	for _, pt := range points {
		x := float64(pt.P) * math.Log2(float64(pt.P))
		sxy += x * pt.W
		sxx += x * x
	}
	if sxx == 0 {
		return 0, 0
	}
	c = sxy / sxx
	var mean float64
	for _, pt := range points {
		mean += pt.W
	}
	mean /= float64(len(points))
	var ssRes, ssTot float64
	for _, pt := range points {
		x := float64(pt.P) * math.Log2(float64(pt.P))
		d := pt.W - c*x
		ssRes += d * d
		dm := pt.W - mean
		ssTot += dm * dm
	}
	if ssTot == 0 {
		return c, 1
	}
	return c, 1 - ssRes/ssTot
}

// GrowthExponent estimates the power b in W ~ a * (P log2 P)^b for a
// curve, by least-squares on the log-log form.  b near 1 confirms
// O(P log P) isoefficiency; b substantially above 1 indicates the
// super-(P log P) growth the paper reports for nGP at high thresholds.
func GrowthExponent(points []Point) (b float64, ok bool) {
	if len(points) < 2 {
		return 0, false
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(points))
	for _, pt := range points {
		x := math.Log(float64(pt.P) * math.Log2(float64(pt.P)))
		y := math.Log(pt.W)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, false
	}
	return (n*sxy - sx*sy) / den, true
}

package analysis_test

import (
	"fmt"

	"simdtree/internal/analysis"
)

// Computing the optimal static trigger for the paper's largest
// experiment: W = 16.1M nodes on 8192 processors with the CM-2's
// tlb/Ucalc = 13/30 (the paper's Table 2 prints 0.95 for this tier).
func ExampleOptimalStaticTrigger() {
	xo := analysis.OptimalStaticTrigger(16110463, 8192, 13.0/30.0, 0.5)
	fmt.Printf("xo = %.2f\n", xo)
	// Output:
	// xo = 0.93
}

// The worst-case phase bounds behind Table 6: GP needs a constant number
// of phases per work-halving, nGP a polylog factor that explodes with x.
func ExampleVBoundGP() {
	fmt.Println(analysis.VBoundGP(0.5), analysis.VBoundGP(0.8), analysis.VBoundGP(0.9))
	// Output:
	// 2 5 10
}

// Symbolic isoefficiency functions per architecture (Table 6).
func ExampleIsoStatic() {
	for _, topo := range []string{"cm2", "hypercube", "mesh"} {
		gp, _ := analysis.IsoStatic("GP", 0.9, topo)
		fmt.Printf("GP-S0.90 on %-9s %s\n", topo+":", gp)
	}
	// Output:
	// GP-S0.90 on cm2:      O(P log P)
	// GP-S0.90 on hypercube: O(P log^3 P)
	// GP-S0.90 on mesh:     O(P^1.5 log P)
}

// Inverse isoefficiency: how large a problem sustains E = 0.80 on 8192
// CM-2 processors under GP-S0.90?
func ExampleRequiredW() {
	w, ok := analysis.RequiredW(0.80, 8192, "GP", 0.9, 13.0/30.0, 0.5)
	fmt.Printf("reachable=%v, W ~ %.1fM nodes\n", ok, w/1e6)
	// Output:
	// reachable=true, W ~ 5.7M nodes
}

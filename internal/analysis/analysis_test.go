package analysis

import (
	"math"
	"strings"
	"testing"
)

func TestLogSplit(t *testing.T) {
	// alpha = 0.5: log base 2.
	if got := LogSplit(1024, 0.5); math.Abs(got-10) > 1e-9 {
		t.Errorf("LogSplit(1024, .5) = %v, want 10", got)
	}
	if LogSplit(1, 0.5) != 0 || LogSplit(0.5, 0.3) != 0 {
		t.Error("LogSplit of w<=1 should be 0")
	}
	// Worse splitters need more splits.
	if LogSplit(1e6, 0.1) <= LogSplit(1e6, 0.5) {
		t.Error("smaller alpha must require more splits")
	}
}

func TestVBounds(t *testing.T) {
	if VBoundGP(0.5) != 2 || VBoundGP(0.9) != 10 {
		t.Errorf("VBoundGP: %v, %v", VBoundGP(0.5), VBoundGP(0.9))
	}
	if !math.IsInf(VBoundGP(1), 1) {
		t.Error("VBoundGP(1) should be infinite")
	}
	// x <= 0.5: single phase suffices.
	if VBoundNGP(0.5, 1e6, 0.5) != 1 || VBoundNGP(0.3, 1e6, 0.5) != 1 {
		t.Error("VBoundNGP should be 1 for x <= 0.5")
	}
	// Growth in x: the exponent (2x-1)/(1-x) increases.
	w := 1e6
	v7 := VBoundNGP(0.7, w, 0.5)
	v8 := VBoundNGP(0.8, w, 0.5)
	v9 := VBoundNGP(0.9, w, 0.5)
	if !(v7 < v8 && v8 < v9) {
		t.Errorf("VBoundNGP not increasing in x: %v %v %v", v7, v8, v9)
	}
	// Paper's example after equation 16: from x=0.80 to x=0.90 the bound
	// grows by a factor of log^5 W ((2*.9-1)/(1-.9) - (2*.8-1)/(1-.8) = 8-3 = 5).
	logW := LogSplit(w, 0.5)
	ratio := v9 / v8
	if math.Abs(ratio-math.Pow(logW, 5))/math.Pow(logW, 5) > 1e-9 {
		t.Errorf("x .8->.9 growth factor %v, want log^5 W = %v", ratio, math.Pow(logW, 5))
	}
}

// TestOptimalTriggerMatchesPaper checks equation 18 against the analytic
// trigger column of the paper's Table 2 (P=8192, tlb/Ucalc=13/30): the
// paper lists xo = 0.82, 0.89, 0.92, 0.95 for the four problem sizes.
// Our alpha assumption differs from whatever the authors used, so a
// tolerance of 0.04 applies; the ordering must be exact.
func TestOptimalTriggerMatchesPaper(t *testing.T) {
	cases := []struct {
		w     float64
		paper float64
	}{
		{941852, 0.82},
		{3055171, 0.89},
		{6073623, 0.92},
		{16110463, 0.95},
	}
	prev := 0.0
	for _, c := range cases {
		xo := OptimalStaticTrigger(c.w, 8192, 13.0/30.0, 0.5)
		if math.Abs(xo-c.paper) > 0.04 {
			t.Errorf("W=%v: xo=%.3f, paper says %.2f", c.w, xo, c.paper)
		}
		if xo <= prev {
			t.Errorf("xo must increase with W: %v after %v", xo, prev)
		}
		prev = xo
	}
}

func TestOptimalTriggerMonotonicity(t *testing.T) {
	// Decreases with P.
	if OptimalStaticTrigger(1e6, 16384, 0.43, 0.5) >= OptimalStaticTrigger(1e6, 1024, 0.43, 0.5) {
		t.Error("xo should decrease with P")
	}
	// Decreases as load balancing gets relatively more expensive.
	if OptimalStaticTrigger(1e6, 8192, 16*0.43, 0.5) >= OptimalStaticTrigger(1e6, 8192, 0.43, 0.5) {
		t.Error("xo should decrease with the tlb/Ucalc ratio")
	}
	// Decreases as the splitter degrades.
	if OptimalStaticTrigger(1e6, 8192, 0.43, 0.1) >= OptimalStaticTrigger(1e6, 8192, 0.43, 0.5) {
		t.Error("xo should decrease as alpha degrades")
	}
	// Degenerate inputs clamp to 1.
	if OptimalStaticTrigger(1, 8192, 0.43, 0.5) != 1 {
		t.Error("degenerate W should clamp xo to 1")
	}
}

func TestModelEfficiency(t *testing.T) {
	// Larger problems are more efficient at fixed P and x.
	e1 := ModelEfficiency(0.9, 0, 1e6, 8192, VBoundGP(0.9), 0.43, 0.5)
	e2 := ModelEfficiency(0.9, 0, 16e6, 8192, VBoundGP(0.9), 0.43, 0.5)
	if !(0 < e1 && e1 < e2 && e2 < 1) {
		t.Errorf("model efficiencies out of order: %v %v", e1, e2)
	}
	// Efficiency is capped by x + delta.
	if e := ModelEfficiency(0.7, 0, 1e12, 4, 1, 0.43, 0.5); e > 0.700001 {
		t.Errorf("E=%v exceeds the x+delta cap", e)
	}
	// nGP's bigger V(P) lowers modelled efficiency (at a W/P ratio large
	// enough that the saturation clamp is not binding for GP).
	eGP := ModelEfficiency(0.9, 0, 16e6, 1024, VBoundGP(0.9), 0.43, 0.5)
	eNGP := ModelEfficiency(0.9, 0, 16e6, 1024, VBoundNGP(0.9, 16e6, 0.5), 0.43, 0.5)
	if eNGP >= eGP {
		t.Errorf("model: nGP (%v) should be below GP (%v) at x=0.9", eNGP, eGP)
	}
	// When the phase bound saturates (small W per processor), both
	// schemes degrade to the same floor — the paper's explanation of why
	// small problems show near-O(P log P) curves even for nGP.
	eGPs := ModelEfficiency(0.9, 0, 1e5, 8192, VBoundGP(0.9), 0.43, 0.5)
	eNGPs := ModelEfficiency(0.9, 0, 1e5, 8192, VBoundNGP(0.9, 1e5, 0.5), 0.43, 0.5)
	if math.Abs(eGPs-eNGPs) > 1e-9 {
		t.Errorf("saturated regime: GP %v and nGP %v should coincide", eGPs, eNGPs)
	}
	if ModelEfficiency(0, 0, 1e6, 8192, 1, 0.43, 0.5) != 0 {
		t.Error("x+delta=0 should give E=0")
	}
}

func TestRequiredW(t *testing.T) {
	const (
		target = 0.80
		p      = 8192.0
		ratio  = 13.0 / 30.0
		alpha  = 0.5
	)
	w, ok := RequiredW(target, p, "GP", 0.9, ratio, alpha)
	if !ok {
		t.Fatal("GP target unreachable")
	}
	got := ModelEfficiency(0.9, 0, w, p, VBoundGP(0.9), ratio, alpha)
	if math.Abs(got-target) > 0.005 {
		t.Errorf("ModelEfficiency(RequiredW) = %v, want ~%v", got, target)
	}
	// Just below w the efficiency must be below the target (minimality).
	below := ModelEfficiency(0.9, 0, w*0.9, p, VBoundGP(0.9), ratio, alpha)
	if below >= target {
		t.Errorf("efficiency %v at 0.9*W already meets the target; W not minimal", below)
	}
	// nGP needs far more work for the same target at x=0.9.
	wn, ok := RequiredW(target, p, "nGP", 0.9, ratio, alpha)
	if !ok {
		t.Fatal("nGP target unreachable")
	}
	if wn < 10*w {
		t.Errorf("nGP required W %v not much larger than GP's %v", wn, w)
	}
	// Targets at or above the x cap are unreachable.
	if _, ok := RequiredW(0.95, p, "GP", 0.9, ratio, alpha); ok {
		t.Error("target above the x cap reported reachable")
	}
	if _, ok := RequiredW(0, p, "GP", 0.9, ratio, alpha); ok {
		t.Error("zero target reported reachable")
	}
}

func TestIsoStatic(t *testing.T) {
	gpH, err := IsoStatic("GP", 0.9, "hypercube")
	if err != nil {
		t.Fatal(err)
	}
	if gpH.PPower != 1 || gpH.LogPower != 3 {
		t.Errorf("GP hypercube iso = %+v, want P log^3 P", gpH)
	}
	gpM, _ := IsoStatic("GP", 0.9, "mesh")
	if gpM.PPower != 1.5 || gpM.LogPower != 1 {
		t.Errorf("GP mesh iso = %+v, want P^1.5 log P", gpM)
	}
	gpC, _ := IsoStatic("GP", 0.9, "cm2")
	if gpC.PPower != 1 || gpC.LogPower != 1 {
		t.Errorf("GP cm2 iso = %+v, want P log P", gpC)
	}
	ngp, _ := IsoStatic("nGP", 0.9, "cm2")
	if ngp.LogPower <= gpC.LogPower {
		t.Error("nGP must have a worse log power than GP at x=0.9")
	}
	ngp5, _ := IsoStatic("nGP", 0.5, "cm2")
	if ngp5 != gpC {
		t.Error("at x=0.5 nGP and GP isoefficiencies coincide")
	}
	if _, err := IsoStatic("GP", 0.9, "torus"); err == nil {
		t.Error("unknown topology should fail")
	}
	if _, err := IsoStatic("XP", 0.9, "mesh"); err == nil {
		t.Error("unknown matcher should fail")
	}
}

func TestIsoStringAndEval(t *testing.T) {
	iso := Iso{PPower: 1, LogPower: 3}
	if s := iso.String(); !strings.Contains(s, "log^3") {
		t.Errorf("String = %q", s)
	}
	if s := (Iso{PPower: 1.5, LogPower: 1}).String(); !strings.Contains(s, "P^1.5") {
		t.Errorf("String = %q", s)
	}
	if s := (Iso{PPower: 1, LogPower: 0}).String(); s != "O(P)" {
		t.Errorf("String = %q", s)
	}
	if iso.Eval(1024) != 1024*1000 {
		t.Errorf("Eval(1024) = %v, want 1024*10^3", iso.Eval(1024))
	}
}

func TestTable6(t *testing.T) {
	rows := Table6()
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	if rows[0].Topology != "hypercube" || !strings.Contains(rows[0].GP, "log^3") {
		t.Errorf("hypercube row wrong: %+v", rows[0])
	}
}

func TestIsoCurves(t *testing.T) {
	// Construct samples where E = min(1, W/(1000*P)): the iso-curve for
	// level e should be W = 1000*P*e.
	var samples []Sample
	for _, p := range []int{16, 32, 64} {
		for _, w := range []int64{4000, 16000, 64000, 256000} {
			e := float64(w) / (1000 * float64(p))
			if e > 1 {
				e = 1
			}
			samples = append(samples, Sample{P: p, W: w, E: e})
		}
	}
	curves := IsoCurves(samples, []float64{0.5})
	curve := curves[0.5]
	if len(curve) != 3 {
		t.Fatalf("curve has %d points, want 3: %v", len(curve), curve)
	}
	for _, pt := range curve {
		want := 1000 * float64(pt.P) * 0.5
		// Log-interpolation error tolerance.
		if pt.W > want*1.3 || pt.W < want*0.7 {
			t.Errorf("P=%d: W=%v, want ~%v", pt.P, pt.W, want)
		}
	}
}

func TestIsoCurvesUnreachableLevel(t *testing.T) {
	samples := []Sample{{P: 8, W: 1000, E: 0.3}}
	curves := IsoCurves(samples, []float64{0.9})
	if len(curves[0.9]) != 0 {
		t.Error("unreachable level should give an empty curve")
	}
}

func TestFitPLogP(t *testing.T) {
	// Exact P log P data must fit with R^2 = 1.
	var pts []Point
	for _, p := range []int{16, 64, 256, 1024} {
		pts = append(pts, Point{P: p, W: 42 * float64(p) * math.Log2(float64(p))})
	}
	c, r2 := FitPLogP(pts)
	if math.Abs(c-42) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Errorf("fit c=%v r2=%v, want 42, 1", c, r2)
	}
	if c, r2 := FitPLogP(nil); c != 0 || r2 != 0 {
		t.Error("empty fit should be zero")
	}
}

func TestGrowthExponent(t *testing.T) {
	mk := func(b float64) []Point {
		var pts []Point
		for _, p := range []int{16, 64, 256, 1024} {
			x := float64(p) * math.Log2(float64(p))
			pts = append(pts, Point{P: p, W: 3 * math.Pow(x, b)})
		}
		return pts
	}
	for _, want := range []float64{1.0, 1.5, 2.0} {
		got, ok := GrowthExponent(mk(want))
		if !ok || math.Abs(got-want) > 1e-6 {
			t.Errorf("exponent %v, want %v", got, want)
		}
	}
	if _, ok := GrowthExponent(nil); ok {
		t.Error("exponent of empty curve should fail")
	}
}

package simdtree

import (
	"testing"

	"simdtree/internal/queens"
)

func TestSchemesList(t *testing.T) {
	labels := Schemes()
	if len(labels) != 6 {
		t.Fatalf("%d schemes, want the 6 of Table 1", len(labels))
	}
}

func TestSearchSynthetic(t *testing.T) {
	stats, err := SearchSynthetic(5000, 1, "GP-DK", Options{P: 32})
	if err != nil {
		t.Fatal(err)
	}
	if stats.W != 5000 {
		t.Errorf("W=%d, want 5000", stats.W)
	}
	if stats.Efficiency() <= 0 {
		t.Error("non-positive efficiency")
	}
}

func TestSearchPuzzle(t *testing.T) {
	stats, w, err := SearchPuzzle(5, 16, "GP-S0.80", Options{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.W != w {
		t.Errorf("parallel W=%d, serial W=%d", stats.W, w)
	}
	if stats.Goals == 0 {
		t.Error("no solutions found in the final iteration")
	}
}

func TestRunRejectsBadScheme(t *testing.T) {
	if _, err := SearchSynthetic(100, 1, "bogus", Options{P: 4}); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestRunGenericWithCustomDomain(t *testing.T) {
	stats, err := Run[queens.Node](queens.New(7), "nGP-S0.70", Options{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Goals != 40 {
		t.Errorf("7-queens found %d solutions, want 40", stats.Goals)
	}
}

package simdtree

import (
	"context"
	"errors"
	"testing"

	"simdtree/internal/puzzle"
	"simdtree/internal/queens"
	"simdtree/internal/search"
	"simdtree/internal/simd"
)

func TestSchemesList(t *testing.T) {
	labels := Schemes()
	if len(labels) != 6 {
		t.Fatalf("%d schemes, want the 6 of Table 1", len(labels))
	}
}

func TestSearchSynthetic(t *testing.T) {
	stats, err := SearchSynthetic(5000, 1, "GP-DK", Options{P: 32})
	if err != nil {
		t.Fatal(err)
	}
	if stats.W != 5000 {
		t.Errorf("W=%d, want 5000", stats.W)
	}
	if stats.Efficiency() <= 0 {
		t.Error("non-positive efficiency")
	}
}

func TestSearchPuzzle(t *testing.T) {
	stats, w, err := SearchPuzzle(5, 16, "GP-S0.80", Options{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.W != w {
		t.Errorf("parallel W=%d, serial W=%d", stats.W, w)
	}
	if stats.Goals == 0 {
		t.Error("no solutions found in the final iteration")
	}
}

// TestWorkerCountInvariance is the cross-package determinism regression
// test: the Workers option only shards the host-side simulation loop, so
// the same instance must produce field-for-field identical Stats at any
// worker count.  This is the invariant the simdlint detrand and maporder
// analyzers exist to protect.
func TestWorkerCountInvariance(t *testing.T) {
	for _, label := range []string{"GP-S0.80", "GP-DK"} {
		base, _, err := SearchPuzzle(5, 16, label, Options{P: 16, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{4, 8} {
			got, _, err := SearchPuzzle(5, 16, label, Options{P: 16, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got != base {
				t.Errorf("%s: Workers=%d stats differ from Workers=1:\n got %+v\nwant %+v",
					label, workers, got, base)
			}
		}
	}

	base, err := SearchSynthetic(5000, 1, "GP-DP", Options{P: 32, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		got, err := SearchSynthetic(5000, 1, "GP-DP", Options{P: 32, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got != base {
			t.Errorf("synthetic: Workers=%d stats differ from Workers=1:\n got %+v\nwant %+v",
				workers, got, base)
		}
	}
}

func TestRunRejectsBadScheme(t *testing.T) {
	if _, err := SearchSynthetic(100, 1, "bogus", Options{P: 4}); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestRunGenericWithCustomDomain(t *testing.T) {
	stats, err := Run[queens.Node](queens.New(7), "nGP-S0.70", Options{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Goals != 40 {
		t.Errorf("7-queens found %d solutions, want 40", stats.Goals)
	}
}

// TestResumeFacade drives the checkpoint path through the public facade:
// interrupt SearchPuzzleContext at a cycle boundary, snapshot, and let
// SearchPuzzleResumeContext finish the run to the uninterrupted stats.
func TestResumeFacade(t *testing.T) {
	const (
		seed  uint64 = 5
		steps        = 16
		label        = "GP-S0.80"
	)
	ref, w, err := SearchPuzzleContext(context.Background(), seed, steps, label, Options{P: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{P: 16, ProgressEvery: 1}
	k := ref.Cycles / 2
	opts.Progress = func(p simd.ProgressInfo) {
		if p.Cycles >= k {
			cancel()
		}
	}
	dom := puzzle.NewDomain(puzzle.Scramble(seed, steps))
	bound, _ := search.FinalIterationBound(dom)
	m, err := simd.NewMachine[puzzle.Node](search.NewBounded(dom, bound), mustScheme[puzzle.Node](t, label), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt: %v", err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, w2, err := SearchPuzzleResumeContext(context.Background(), seed, steps, label, Options{P: 16}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if got != ref || w2 != w {
		t.Errorf("resumed run differs:\n got %+v (w=%d)\nwant %+v (w=%d)", got, w2, ref, w)
	}
}

func mustScheme[S any](t *testing.T, label string) simd.Scheme[S] {
	t.Helper()
	sch, err := simd.ParseScheme[S](label)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// Example: drive a batch of 15-puzzle instances through a running
// simdserve and print an efficiency table.
//
// The repo's convention for "Korf-style" workloads is seeded scramble
// walks (see README: the service also accepts explicit "tiles" for real
// benchmark positions).  The client submits every instance in one
// POST /v1/jobs:batch call — one round trip, per-item verdicts — then
// follows the first job's Server-Sent-Events progress stream with a live
// cycle counter while the pool works, polls the rest to completion, and
// finally prints the Section 3.1 efficiency table.  Submitting the same
// batch twice demonstrates the deterministic result cache: the second
// pass completes instantly with cache_hit set on every job.
//
// Usage:
//
//	make serve &
//	go run ./examples/service-client [-addr http://localhost:8080] [-p 256] [-scheme GP-DK]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"
)

// jobSpec mirrors the service's POST /v1/jobs request body.
type jobSpec struct {
	Domain string     `json:"domain"`
	Scheme string     `json:"scheme"`
	P      int        `json:"p"`
	Puzzle puzzleSpec `json:"puzzle"`
}

type puzzleSpec struct {
	Seed  uint64 `json:"seed"`
	Steps int    `json:"steps"`
}

// jobStatus is the slice of the service's job document the client needs.
type jobStatus struct {
	ID         string  `json:"id"`
	Status     string  `json:"status"`
	CacheHit   bool    `json:"cache_hit"`
	Error      string  `json:"error"`
	Efficiency float64 `json:"efficiency"`
	Speedup    float64 `json:"speedup"`
	LatencyMS  int64   `json:"latency_ms"`
	Stats      *struct {
		W        int64 `json:"W"`
		Cycles   int64 `json:"Cycles"`
		LBPhases int64 `json:"LBPhases"`
		Goals    int64 `json:"Goals"`
	} `json:"stats"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "service-client:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "http://localhost:8080", "simdserve base URL")
	scheme := flag.String("scheme", "GP-DK", "load-balancing scheme for every job")
	p := flag.Int("p", 256, "simulated processors per job")
	steps := flag.Int("steps", 24, "scramble walk length per instance")
	n := flag.Int("n", 8, "number of scramble instances in the batch")
	flag.Parse()

	client := &http.Client{Timeout: 30 * time.Second}
	if err := ping(client, *addr); err != nil {
		return fmt.Errorf("service not reachable (run `make serve` first): %w", err)
	}

	// Submit the whole batch in one POST /v1/jobs:batch round trip:
	// seeds 1..n, one spec per instance, one verdict per item.
	specs := make([]jobSpec, 0, *n)
	for seed := uint64(1); seed <= uint64(*n); seed++ {
		specs = append(specs, jobSpec{
			Domain: "puzzle",
			Scheme: *scheme,
			P:      *p,
			Puzzle: puzzleSpec{Seed: seed, Steps: *steps},
		})
	}
	ids, err := submitBatch(client, *addr, specs)
	if err != nil {
		return fmt.Errorf("batch submit: %w", err)
	}
	fmt.Printf("submitted %d jobs in one batch (%s, P=%d, steps=%d)\n", len(ids), *scheme, *p, *steps)

	// Follow the first job's SSE progress stream with a live cycle
	// counter while the rest of the batch queues behind it.
	if err := follow(*addr, ids[0]); err != nil {
		return fmt.Errorf("follow %s: %w", ids[0], err)
	}

	// Stream status transitions until every job is terminal.
	final := make(map[string]jobStatus, len(ids))
	last := make(map[string]string, len(ids))
	for len(final) < len(ids) {
		for _, id := range ids {
			if _, done := final[id]; done {
				continue
			}
			st, err := get(client, *addr, id)
			if err != nil {
				return fmt.Errorf("poll %s: %w", id, err)
			}
			if st.Status != last[id] {
				fmt.Printf("  %-4s %s\n", id, st.Status)
				last[id] = st.Status
			}
			switch st.Status {
			case "queued", "running":
			default:
				final[id] = st
			}
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The efficiency table, in submission order.
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\njob\tstatus\tcache\tW\tcycles\tphases\tE\tspeedup\tlatency")
	for _, id := range ids {
		st := final[id]
		if st.Stats == nil {
			fmt.Fprintf(w, "%s\t%s\t\t\t\t\t\t\t%s\n", id, st.Status, st.Error)
			continue
		}
		hit := ""
		if st.CacheHit {
			hit = "hit"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\t%.3f\t%.1f\t%dms\n",
			id, st.Status, hit, st.Stats.W, st.Stats.Cycles, st.Stats.LBPhases,
			st.Efficiency, st.Speedup, st.LatencyMS)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	// Round 2: identical specs — every answer should come from the cache.
	hits := 0
	for seed := uint64(1); seed <= uint64(*n); seed++ {
		st, err := submitFull(client, *addr, jobSpec{
			Domain: "puzzle",
			Scheme: *scheme,
			P:      *p,
			Puzzle: puzzleSpec{Seed: seed, Steps: *steps},
		})
		if err != nil {
			return fmt.Errorf("resubmit seed %d: %w", seed, err)
		}
		if st.CacheHit {
			hits++
		}
	}
	fmt.Printf("\nresubmitted the batch: %d/%d answered from the result cache\n", hits, *n)
	return nil
}

func ping(c *http.Client, addr string) error {
	resp, err := c.Get(addr + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	return nil
}

// submitBatch posts every spec in one /v1/jobs:batch call and returns
// the accepted job ids in input order.
func submitBatch(c *http.Client, addr string, specs []jobSpec) ([]string, error) {
	body, err := json.Marshal(map[string]any{"jobs": specs})
	if err != nil {
		return nil, err
	}
	resp, err := c.Post(addr+"/v1/jobs:batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("batch: %s", resp.Status)
	}
	var br struct {
		Accepted int `json:"accepted"`
		Items    []struct {
			Index int    `json:"index"`
			Code  int    `json:"code"`
			Error string `json:"error"`
			ID    string `json:"id"`
		} `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(br.Items))
	for _, it := range br.Items {
		if it.ID == "" {
			return nil, fmt.Errorf("item %d rejected (%d): %s", it.Index, it.Code, it.Error)
		}
		ids = append(ids, it.ID)
	}
	return ids, nil
}

// follow subscribes to one job's SSE progress stream and renders a live
// cycle counter until the terminal event.  The stream client carries no
// timeout: an SSE subscription is open-ended by design.
func follow(addr, id string) error {
	resp, err := http.Get(addr + "/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("events: %s", resp.Status)
	}
	var ev struct {
		Type     string `json:"type"`
		Status   string `json:"status"`
		Cycle    int64  `json:"cycle"`
		Active   int64  `json:"active"`
		W        int64  `json:"w"`
		Terminal bool   `json:"terminal"`
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return fmt.Errorf("bad event %q: %w", line, err)
		}
		switch {
		case ev.Terminal:
			fmt.Printf("\r  %s: %s after %d cycles, %d nodes expanded\n", id, ev.Status, ev.Cycle, ev.W)
			return nil
		case ev.Type == "progress":
			fmt.Printf("\r  %s: cycle %d, %d PEs active, W=%d", id, ev.Cycle, ev.Active, ev.W)
		case ev.Type == "status":
			fmt.Printf("\r  %s: %s", id, ev.Status)
		}
	}
	return sc.Err()
}

func submitFull(c *http.Client, addr string, spec jobSpec) (jobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return jobStatus{}, err
	}
	resp, err := c.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return jobStatus{}, err
	}
	defer resp.Body.Close()
	// 202 = queued, 200 = answered from cache; anything else is an error.
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return jobStatus{}, fmt.Errorf("submit: %s", resp.Status)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return jobStatus{}, err
	}
	return st, nil
}

func get(c *http.Client, addr, id string) (jobStatus, error) {
	resp, err := c.Get(addr + "/v1/jobs/" + id)
	if err != nil {
		return jobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobStatus{}, fmt.Errorf("get %s: %s", id, resp.Status)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return jobStatus{}, err
	}
	return st, nil
}

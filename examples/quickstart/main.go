// Quickstart: solve a scrambled 15-puzzle on a simulated 1024-processor
// SIMD machine with the paper's best scheme (GP matching + D^K dynamic
// triggering), exactly the way the paper's CM-2 experiments ran — the
// final IDA* iteration searched exhaustively so that serial and parallel
// work coincide.
package main

import (
	"fmt"
	"log"
	"runtime"

	"simdtree"
	"simdtree/internal/puzzle"
)

func main() {
	opts := simdtree.Options{P: 1024, Workers: runtime.NumCPU()}
	stats, w, err := simdtree.SearchPuzzle(2023, 44, "GP-DK", opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("problem size W            = %d nodes (serial ground truth)\n", w)
	fmt.Printf("solutions found           = %d\n", stats.Goals)
	fmt.Printf("node expansion cycles     = %d\n", stats.Cycles)
	fmt.Printf("load-balancing phases     = %d (%d work transfers)\n", stats.LBPhases, stats.Transfers)
	fmt.Printf("virtual parallel time     = %v\n", stats.Tpar)
	fmt.Printf("efficiency E              = %.3f  (speedup %.1f on %d PEs)\n",
		stats.Efficiency(), stats.Speedup(), stats.P)

	// The machine measures the parallel search; the serial solver hands
	// back the actual moves.
	start := puzzle.Scramble(2023, 44)
	names := map[uint8]string{puzzle.MoveUp: "U", puzzle.MoveDown: "D", puzzle.MoveLeft: "L", puzzle.MoveRight: "R"}
	if moves, bound, ok := puzzle.Solve(start, 0); ok {
		fmt.Printf("\noptimal solution (%d blank moves): ", bound)
		for _, m := range moves {
			fmt.Print(names[m])
		}
		fmt.Println()
	}

	fmt.Println("\navailable schemes:", simdtree.Schemes())
}

// Custom problem: plug a user-defined search domain into the SIMD engine.
// The domain here is graph colouring by backtracking — count all proper
// 3-colourings of a random graph — implemented entirely in this file
// against the search.Domain interface, then searched in parallel under
// three different schemes.  Nothing in the engine knows about colouring;
// any finite tree with a successor generator works.
package main

import (
	"fmt"
	"log"
	"runtime"

	"simdtree/internal/search"
	"simdtree/internal/simd"
)

// coloring is a partial assignment of colours to the first Assigned
// vertices of a fixed graph.
type coloring struct {
	Assigned uint8
	Colors   [24]uint8 // colour of each assigned vertex (0..k-1)
}

// graphColoring is the search domain: a graph plus a colour budget.
type graphColoring struct {
	n     int
	k     uint8
	adj   [24]uint32 // adjacency bitmasks
	nEdge int
}

// newRandomGraph builds a deterministic random graph with n vertices and
// edge probability ~den/256.
func newRandomGraph(n int, k uint8, seed uint64, den uint64) *graphColoring {
	g := &graphColoring{n: n, k: k}
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if next()%256 < den {
				g.adj[i] |= 1 << j
				g.adj[j] |= 1 << i
				g.nEdge++
			}
		}
	}
	return g
}

// Root implements search.Domain.
func (g *graphColoring) Root() coloring { return coloring{} }

// Goal implements search.Domain: all vertices coloured.
func (g *graphColoring) Goal(c coloring) bool { return int(c.Assigned) == g.n }

// Expand implements search.Domain: try every colour for the next vertex
// that is consistent with its already-coloured neighbours.
func (g *graphColoring) Expand(c coloring, buf []coloring) []coloring {
	v := int(c.Assigned)
	if v == g.n {
		return buf
	}
	for col := uint8(0); col < g.k; col++ {
		ok := true
		for u := 0; u < v; u++ {
			if g.adj[v]&(1<<u) != 0 && c.Colors[u] == col {
				ok = false
				break
			}
		}
		if ok {
			child := c
			child.Colors[v] = col
			child.Assigned++
			//lint:allow hotalloc expansion buffer is reused by the engine and reaches the branching factor
			buf = append(buf, child)
		}
	}
	return buf
}

func main() {
	g := newRandomGraph(22, 3, 7, 45)
	serial := search.DFS[coloring](g)
	fmt.Printf("graph: %d vertices, %d edges, %d colours\n", g.n, g.nEdge, g.k)
	fmt.Printf("serial: W = %d nodes, %d proper colourings\n\n", serial.Expanded, serial.Goals)

	for _, label := range []string{"GP-S0.90", "GP-DK", "nGP-DP"} {
		sch, err := simd.ParseScheme[coloring](label)
		if err != nil {
			log.Fatal(err)
		}
		opts := simd.Options{P: 256, Workers: runtime.NumCPU()}
		opts.Costs = simd.CM2Costs()
		stats, err := simd.Run[coloring](g, sch, opts)
		if err != nil {
			log.Fatal(err)
		}
		if stats.Goals != serial.Goals || stats.W != serial.Expanded {
			log.Fatalf("%s: parallel result diverged from serial", label)
		}
		fmt.Printf("%-9s cycles=%4d phases=%3d E=%.3f\n",
			label, stats.Cycles, stats.LBPhases, stats.Efficiency())
	}
}

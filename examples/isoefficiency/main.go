// Isoefficiency: reproduce the shape of the paper's Figure 4 on a laptop.
// Sweeps a grid of machine sizes and problem sizes for GP-S0.90 and
// nGP-S0.90, extracts experimental isoefficiency curves, and fits the
// growth exponent b in W ~ (P log P)^b: b near 1 confirms GP's O(P log P)
// scalability; nGP's exponent should come out visibly larger.
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"simdtree/internal/experiments"
)

func main() {
	ps := []int{64, 128, 256, 512, 1024}
	ws := []int64{4_000, 8_000, 16_000, 32_000, 64_000, 128_000, 256_000, 512_000}
	levels := []float64{0.50, 0.65, 0.75}

	results, err := experiments.IsoGrid(
		[]string{"GP-S0.90", "nGP-S0.90"},
		ps, ws, runtime.NumCPU(), levels, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nGrowth exponents b in W ~ (P log P)^b per efficiency level:")
	for _, res := range results {
		for _, lv := range levels {
			if b, ok := res.Exponents[lv]; ok {
				fmt.Printf("  %-10s E=%.2f  b=%.2f\n", res.Scheme, lv, b)
			}
		}
	}
	fmt.Println("\nb ~ 1 means O(P log P) isoefficiency (the paper's verdict for GP).")
}

// Schemes shootout: run every load-balancing scheme of the paper's Table 1
// plus the Section 8 baselines on one workload and compare the metrics the
// paper's tables report.  With the static threshold high and the machine
// large, GP should beat nGP on phase count, and the dynamic triggers should
// track the optimal static trigger.
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"text/tabwriter"

	"simdtree/internal/analysis"
	"simdtree/internal/baselines"
	"simdtree/internal/simd"
	"simdtree/internal/synthetic"
)

func main() {
	const (
		w = 500_000
		p = 1024
	)
	tree := synthetic.New(w, 99)

	var schemes []simd.Scheme[synthetic.Node]
	for _, label := range simd.Table1Labels(0.90) {
		sch, err := simd.ParseScheme[synthetic.Node](label)
		if err != nil {
			log.Fatal(err)
		}
		schemes = append(schemes, sch)
	}
	// The analytically optimal static trigger for this (W, P) pair.
	xo := analysis.OptimalStaticTrigger(w, p, 13.0/30.0, 0.5)
	opt, err := simd.StaticScheme[synthetic.Node]("GP", xo)
	if err != nil {
		log.Fatal(err)
	}
	opt.Label = fmt.Sprintf("GP-S%.2f (xo)", xo)
	schemes = append(schemes, opt)
	schemes = append(schemes, baselines.All[synthetic.Node]()...)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "scheme\tNexpand\tNlb\ttransfers\tE\tspeedup\n")
	for _, sch := range schemes {
		opts := simd.Options{P: p, Workers: runtime.NumCPU()}
		opts.Costs = simd.CM2Costs()
		stats, err := simd.Run[synthetic.Node](tree, sch, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.3f\t%.0f\n",
			sch.Label, stats.Cycles, stats.LBPhases, stats.Transfers,
			stats.Efficiency(), stats.Speedup())
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}

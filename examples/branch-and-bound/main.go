// Branch-and-bound: run depth-first branch-and-bound (one of the
// depth-first searches the paper targets) on the SIMD machine, and watch
// the speedup anomalies the paper's analysis deliberately excludes.
//
// The workload is a strongly correlated 0/1 knapsack instance — hard for
// the fractional bound — solved with a shared incumbent.  Because pruning
// power depends on how early good incumbents appear, the parallel machine
// expands a different number of nodes than the serial search: the ratio
// below is the anomaly.  Correctness is unaffected; the optimum always
// matches the dynamic-programming oracle.
package main

import (
	"fmt"
	"log"
	"runtime"

	"simdtree/internal/knapsack"
	"simdtree/internal/search"
	"simdtree/internal/simd"
)

func main() {
	prob := knapsack.RandomCorrelated(26, 11)
	oracle := prob.OptimalByDP()
	fmt.Printf("knapsack: %d items, capacity %d, DP optimum value %d\n",
		len(prob.Items), prob.Capacity, oracle)

	serialCost, serialW, ok := search.Optimum[knapsack.Node](prob)
	if !ok || -serialCost != oracle {
		log.Fatalf("serial DFBB found %d, oracle %d", -serialCost, oracle)
	}
	fmt.Printf("serial DFBB: optimum %d, W = %d nodes\n\n", -serialCost, serialW)

	fmt.Println("P      parallel W   ratio    optimum")
	for _, p := range []int{16, 64, 256, 1024} {
		sch, err := simd.ParseScheme[knapsack.Node]("GP-DK")
		if err != nil {
			log.Fatal(err)
		}
		b := search.NewDFBB[knapsack.Node](prob)
		stats, err := simd.Run[knapsack.Node](b, sch, simd.Options{P: p, Workers: runtime.NumCPU()})
		if err != nil {
			log.Fatal(err)
		}
		got := -b.In.Best()
		status := "ok"
		if got != oracle {
			status = fmt.Sprintf("WRONG (%d)", got)
		}
		fmt.Printf("%-6d %-12d %-8.2f %s\n", p, stats.W, float64(stats.W)/float64(serialW), status)
	}
	fmt.Println("\nratio > 1 is a deceleration anomaly, < 1 an acceleration anomaly;")
	fmt.Println("the paper's experiments avoid these by searching bounded trees exhaustively.")
}

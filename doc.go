// Package simdtree reproduces "Unstructured Tree Search on SIMD Parallel
// Computers" (Karypis & Kumar, SC 1992): load balancing of unstructured
// tree searches on lock-step SIMD machines.
//
// The library is organised as the paper is:
//
//   - internal/simd — the lock-step machine simulator (the CM-2 substitute):
//     search phases of node-expansion cycles alternating with
//     load-balancing phases under a virtual cost model.
//   - internal/match — the nGP and GP (global pointer) matching schemes.
//   - internal/trigger — the S^x static, D^P and D^K dynamic triggers.
//   - internal/stack — DFS stacks and alpha-splitting mechanisms.
//   - internal/search, internal/puzzle, internal/synthetic,
//     internal/queens — the problem abstraction and workloads.
//   - internal/baselines, internal/mimd — the Section 8 competitors and the
//     MIMD work-stealing comparison.
//   - internal/analysis — isoefficiency functions, V(P) bounds and the
//     optimal static trigger (equation 18).
//   - internal/experiments — runners regenerating every table and figure.
//
// This file provides a small convenience facade over those packages; the
// examples/ directory shows the underlying APIs directly.
package simdtree

import (
	"context"
	"os"

	"simdtree/internal/metrics"
	"simdtree/internal/puzzle"
	"simdtree/internal/search"
	"simdtree/internal/simd"
	"simdtree/internal/spill"
	"simdtree/internal/synthetic"
	"simdtree/internal/wire"
)

// Stats re-exports the Section 3.1 run statistics.
type Stats = metrics.Stats

// Options re-exports the machine configuration.
type Options = simd.Options

// Schemes returns the labels of the paper's six load-balancing schemes
// (Table 1) with a representative static threshold.
func Schemes() []string { return simd.Table1Labels(0.85) }

// RunContext simulates scheme `label` searching domain d on a SIMD
// machine.  The context is checked only at cycle boundaries, so
// cancellation never changes the schedule of the cycles that completed: a
// cancelled run returns the partial Stats of that prefix with
// Stats.Cancelled set, plus the context's cause as the error.
//
// A positive Options.MemBudget needs a node codec to spill with; use the
// codec-aware Search* helpers (which wire one automatically) or build the
// machine and a spill.Manager directly.
func RunContext[S any](ctx context.Context, d search.Domain[S], label string, opts Options) (Stats, error) {
	sch, err := simd.ParseScheme[S](label)
	if err != nil {
		return Stats{}, err
	}
	return simd.RunContext[S](ctx, d, sch, opts)
}

// runSpillable is RunContext for the codec-aware helpers: a positive
// Options.MemBudget gets a temp-directory residency manager, and by the
// determinism contract the stats are identical to an unbounded run's.
func runSpillable[S any](ctx context.Context, d search.Domain[S], codec wire.Codec[S], label string, opts Options) (Stats, error) {
	sch, err := simd.ParseScheme[S](label)
	if err != nil {
		return Stats{}, err
	}
	m, err := simd.NewMachine[S](d, sch, opts)
	if err != nil {
		return Stats{}, err
	}
	if opts.MemBudget > 0 {
		dir, err := os.MkdirTemp("", "simdspill-*")
		if err != nil {
			return Stats{}, err
		}
		defer os.RemoveAll(dir) //lint:allow errdrop temp segments only
		mgr, err := spill.NewManager[S](codec, spill.Config{
			Dir:       dir,
			MemBudget: opts.MemBudget,
			NodeBytes: wire.NodeSize(codec, d.Root()),
		})
		if err != nil {
			return Stats{}, err
		}
		m.SetSpiller(mgr)
	}
	return m.RunContext(ctx)
}

// Run simulates scheme `label` searching domain d on a SIMD machine.
//
// Deprecated: use RunContext, which supports cancellation and deadlines;
// Run is equivalent to RunContext with context.Background().
func Run[S any](d search.Domain[S], label string, opts Options) (Stats, error) {
	//lint:allow ctxflow deprecated context-free wrapper kept for API compatibility
	return RunContext[S](context.Background(), d, label, opts)
}

// ResumeContext continues a run from a checkpoint snapshot (see
// internal/checkpoint for the on-disk format): the domain, scheme label
// and options must match the interrupted run's.  The resumed run
// completes the schedule exactly as the uninterrupted run would have,
// returning identical Stats.
func ResumeContext[S any](ctx context.Context, d search.Domain[S], label string, opts Options, snap *simd.Snapshot[S]) (Stats, error) {
	sch, err := simd.ParseScheme[S](label)
	if err != nil {
		return Stats{}, err
	}
	return simd.ResumeContext[S](ctx, d, sch, opts, snap)
}

// SearchPuzzleResumeContext is SearchPuzzleContext resuming from a
// checkpoint taken by an interrupted run with the same seed, steps,
// label and options.
func SearchPuzzleResumeContext(ctx context.Context, seed uint64, steps int, label string, opts Options, snap *simd.Snapshot[puzzle.Node]) (Stats, int64, error) {
	dom := puzzle.NewDomain(puzzle.Scramble(seed, steps))
	bound, w := search.FinalIterationBound(dom)
	stats, err := ResumeContext[puzzle.Node](ctx, search.NewBounded(dom, bound), label, opts, snap)
	return stats, w, err
}

// SearchPuzzleContext scrambles a 15-puzzle with the given seed and walk
// length, finds the IDA* bound of the first solving iteration, and
// searches that final iteration exhaustively on a simulated SIMD machine —
// the paper's experimental setup in one call.  It returns the run
// statistics and the serial problem size W.  Cancellation follows the
// RunContext contract.
func SearchPuzzleContext(ctx context.Context, seed uint64, steps int, label string, opts Options) (Stats, int64, error) {
	dom := puzzle.NewDomain(puzzle.Scramble(seed, steps))
	bound, w := search.FinalIterationBound(dom)
	stats, err := runSpillable[puzzle.Node](ctx, search.NewBounded(dom, bound), wire.PuzzleCodec{}, label, opts)
	return stats, w, err
}

// SearchPuzzle is SearchPuzzleContext with a background context.
//
// Deprecated: use SearchPuzzleContext.
func SearchPuzzle(seed uint64, steps int, label string, opts Options) (Stats, int64, error) {
	//lint:allow ctxflow deprecated context-free wrapper kept for API compatibility
	return SearchPuzzleContext(context.Background(), seed, steps, label, opts)
}

// SearchSyntheticContext searches a deterministic synthetic tree of
// exactly w nodes under scheme `label`.  Cancellation follows the
// RunContext contract.
func SearchSyntheticContext(ctx context.Context, w int64, seed uint64, label string, opts Options) (Stats, error) {
	return runSpillable[synthetic.Node](ctx, synthetic.New(w, seed), wire.SyntheticCodec{}, label, opts)
}

// SearchSynthetic is SearchSyntheticContext with a background context.
//
// Deprecated: use SearchSyntheticContext.
func SearchSynthetic(w int64, seed uint64, label string, opts Options) (Stats, error) {
	//lint:allow ctxflow deprecated context-free wrapper kept for API compatibility
	return SearchSyntheticContext(context.Background(), w, seed, label, opts)
}

package simdtree_test

import (
	"fmt"
	"log"

	"simdtree"
	"simdtree/internal/puzzle"
	"simdtree/internal/queens"
)

// Searching a deterministic synthetic tree of exactly 50000 nodes on a
// 256-processor machine with the paper's best scheme.
func ExampleSearchSynthetic() {
	stats, err := simdtree.SearchSynthetic(50000, 7, "GP-DK", simdtree.Options{P: 256})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes expanded:", stats.W)
	fmt.Printf("efficiency: %.2f\n", stats.Efficiency())
	// Output:
	// nodes expanded: 50000
	// efficiency: 0.69
}

// Any type with Root/Expand/Goal runs on the machine; here, counting all
// solutions of the 8-queens problem.
func ExampleRun() {
	stats, err := simdtree.Run[queens.Node](queens.New(8), "GP-S0.80", simdtree.Options{P: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("solutions:", stats.Goals)
	// Output:
	// solutions: 92
}

// The six load-balancing schemes of the paper's Table 1.
func ExampleSchemes() {
	for _, label := range simdtree.Schemes() {
		fmt.Println(label)
	}
	// Output:
	// nGP-S0.85
	// nGP-DP
	// nGP-DK
	// GP-S0.85
	// GP-DP
	// GP-DK
}

// Solving one instance outright (the moves, not just the counts) with
// serial IDA* and the linear-conflict heuristic.
func ExampleSolve() {
	start := puzzle.Scramble(42, 20)
	moves, bound, ok := puzzle.Solve(start, 0)
	if !ok {
		log.Fatal("unsolved")
	}
	end, _ := puzzle.Apply(start, moves)
	fmt.Println("optimal length:", bound)
	fmt.Println("solved:", end.H == 0)
	// Output:
	// optimal length: 18
	// solved: true
}

module simdtree

go 1.22

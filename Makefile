# Development entry points.  Everything is standard-library Go; no
# external dependencies.  "make lint" runs go vet plus the repo's own
# simdlint analyzers (cmd/simdlint), which enforce the determinism
# invariants documented in DESIGN.md; it is part of the default target.

GO ?= go

.PHONY: all build test test-race bench bench-go bench-baseline bench-check fuzz vet lint lint-hotpath fmt serve fleet load experiments-quick experiments-full report clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Run the pinned simdbench scenarios and check them against the committed
# baseline (see DESIGN.md section 11).  bench-baseline regenerates the
# baseline file after an intentional perf change; bump the number when you
# want to keep the old trajectory point.
BENCH_BASELINE ?= BENCH_3.json

bench:
	$(GO) run ./cmd/simdbench -out /dev/null -compare $(BENCH_BASELINE)
	$(GO) test -run '^$$' -bench 'BenchmarkFlagFill|BenchmarkArenaTransfer' -benchmem .

bench-baseline:
	$(GO) run ./cmd/simdbench -out $(BENCH_BASELINE)

# CI smoke variant: one iteration per scenario, allocation + schedule gate,
# plus the structure-of-arrays micro-benchmarks (allocs/op must stay 0).
bench-check:
	$(GO) run ./cmd/simdbench -short -out /dev/null -compare $(BENCH_BASELINE)
	$(GO) test -run '^$$' -bench 'BenchmarkFlagFill|BenchmarkArenaTransfer' -benchtime 100x -benchmem .

# The full go-test microbenchmark suite (allocation counts per benchmark).
bench-go:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing bursts over the wire format, puzzle validator, and
# checkpoint decoder.
fuzz:
	$(GO) test -run=xxx -fuzz FuzzDecodeStack -fuzztime 30s ./internal/wire
	$(GO) test -run=xxx -fuzz FuzzDecodeNode -fuzztime 15s ./internal/wire
	$(GO) test -run=xxx -fuzz FuzzFromTiles -fuzztime 15s ./internal/puzzle
	$(GO) test -run=xxx -fuzz FuzzDecodeCheckpoint -fuzztime 30s ./internal/checkpoint
	$(GO) test -run=xxx -fuzz FuzzDecodeStealFrame -fuzztime 30s ./internal/steal
	$(GO) test -run=xxx -fuzz FuzzDecodeSpillSegment -fuzztime 30s ./internal/spill

vet:
	$(GO) vet ./...

# Repo-specific static analysis: determinism (detrand, maporder), float
# equality, dropped errors, sync misuse, pool reset, and the cross-package
# suite (hotalloc, ctxflow, lockorder, atomicmix, sseflush).
lint: vet lint-hotpath
	$(GO) run ./cmd/simdlint ./...

# Fail when the //lint:hotpath root inventory drifts from the committed
# list, so a root cannot silently lose its annotation (and with it the
# zero-alloc coverage of everything it reaches).
lint-hotpath:
	$(GO) run ./cmd/simdlint -hotpath | diff -u docs/hotpath_roots.txt - \
		|| { echo "hotpath roots changed; review and update docs/hotpath_roots.txt" >&2; exit 1; }

fmt:
	gofmt -l -w .

# Run the HTTP search service on :8080 (see DESIGN.md section 9 and the
# README quickstart for the job API).
serve:
	$(GO) run ./cmd/simdserve

# Run a local fleet: coordinator on :18080 fronting FLEET_NODES spooled
# nodes on consecutive ports from FLEET_BASE_PORT (defaults 3 nodes on
# :18081-:18083; see DESIGN.md sections 12 and 15).  FLEET_STEAL=5s turns
# on cross-node work stealing.  Ctrl-C tears it down.
FLEET_NODES ?= 3
FLEET_BASE_PORT ?= 18081
FLEET_STEAL ?=

fleet:
	$(GO) build -o bin/simdserve ./cmd/simdserve
	$(GO) build -o bin/simdfleet ./cmd/simdfleet
	./scripts/fleet.sh -n $(FLEET_NODES) -p $(FLEET_BASE_PORT) $(if $(FLEET_STEAL),-s $(FLEET_STEAL))

# Traffic-layer load smoke: simdload drives an in-process frontend for a
# few seconds and regenerates the BENCH_1.json report (jobs/sec, latency
# percentiles, collapse rate, tenant fairness spread).  -check fails the
# run on transport errors, zero throughput, or any byte-identity
# violation among collapsed responses (see DESIGN.md section 14).
load:
	$(GO) run ./cmd/simdload -inproc -duration 5s -check -out BENCH_1.json

# The paper's evaluation at reduced scale (~2 min).
experiments-quick:
	$(GO) run ./cmd/experiments -scale quick -domain puzzle all

# The paper's evaluation at its own scale: P = 8192, W up to ~16M (~40 min).
experiments-full:
	$(GO) run ./cmd/experiments -scale full -domain puzzle -csv results/csv all

# Regenerate the markdown paper-vs-measured report at quick scale.
report:
	$(GO) run ./cmd/experiments -scale quick -domain puzzle report > docs/report_quick.md

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt

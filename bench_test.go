// Benchmarks regenerating every table and figure of the paper at reduced
// (tiny) scale, so `go test -bench=.` exercises the complete experiment
// pipeline.  Full-scale reproductions run via `go run ./cmd/experiments
// -scale full <experiment>`; see EXPERIMENTS.md for measured results.
package simdtree

import (
	"io"
	"testing"

	"simdtree/internal/bench"
	"simdtree/internal/experiments"
	"simdtree/internal/puzzle"
	"simdtree/internal/scan"
	"simdtree/internal/search"
	"simdtree/internal/stack"
	"simdtree/internal/synthetic"
)

// tinySuite builds the reduced-scale synthetic suite shared by the table
// benchmarks.
func tinySuite() (*experiments.Suite[synthetic.Node], experiments.Scale) {
	sc := experiments.TinyScale
	return &experiments.Suite[synthetic.Node]{
		Workloads: experiments.SyntheticWorkloads(sc.Tiers),
		P:         sc.P,
		Workers:   sc.Workers,
		Out:       io.Discard,
	}, sc
}

var benchThresholds = []float64{0.50, 0.70, 0.90}

func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	s, _ := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table2(benchThresholds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	b.ReportAllocs()
	s, _ := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	b.ReportAllocs()
	s, _ := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	b.ReportAllocs()
	s, _ := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table5(s.Workloads[1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.Table6(io.Discard)
	}
}

func BenchmarkFig1(b *testing.B) {
	b.ReportAllocs()
	s, _ := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig1("GP-DK", s.Workloads[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	b.ReportAllocs()
	s, _ := tinySuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table2(benchThresholds)
		if err != nil {
			b.Fatal(err)
		}
		experiments.Fig3(rows, io.Discard)
	}
}

func BenchmarkFig4(b *testing.B) {
	b.ReportAllocs()
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.IsoGrid(experiments.Fig4Labels(), sc.GridPs, sc.GridWs, sc.Workers,
			[]float64{0.5, 0.65}, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	b.ReportAllocs()
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.IsoGrid(experiments.Fig7Labels(), sc.GridPs, sc.GridWs, sc.Workers,
			[]float64{0.5, 0.65}, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	b.ReportAllocs()
	s, _ := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig8(s.Workloads[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSplitter(b *testing.B) {
	b.ReportAllocs()
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSplitters(sc.Tiers[0], sc.P, 0.85, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationInit(b *testing.B) {
	b.ReportAllocs()
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationInit(sc.Tiers[0], sc.P, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTransfers(b *testing.B) {
	b.ReportAllocs()
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTransfers(sc.Tiers[0], sc.P, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTopology(b *testing.B) {
	b.ReportAllocs()
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTopology(sc.Tiers[0], sc.P, 0.85, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMessageSize(b *testing.B) {
	b.ReportAllocs()
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMessageSize(sc.Tiers[0], sc.P, sc.Workers, 1.0, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDKGamma(b *testing.B) {
	b.ReportAllocs()
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDKGamma(sc.Tiers[0], sc.P, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHeuristic(b *testing.B) {
	b.ReportAllocs()
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHeuristic(2023, 24, sc.P, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnomalies(b *testing.B) {
	b.ReportAllocs()
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Anomalies(16, []uint64{1}, []int{16, 64}, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselines(b *testing.B) {
	b.ReportAllocs()
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BaselineComparison(sc.Tiers[0], sc.P, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMIMDComparison(b *testing.B) {
	b.ReportAllocs()
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MIMDComparison(sc.Tiers[0], sc.P, sc.Workers, 1, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVariance(b *testing.B) {
	b.ReportAllocs()
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Variance(sc.Tiers[0], sc.P, sc.Workers, 3,
			[]string{"GP-DK", "nGP-S0.90"}, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialIDAStar measures the serial 15-puzzle searcher that
// provides the ground-truth problem sizes.
func BenchmarkSerialIDAStar(b *testing.B) {
	b.ReportAllocs()
	dom := puzzle.NewDomain(puzzle.Scramble(3, 26))
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		r := search.IDAStar[puzzle.Node](dom, 0)
		total += r.Expanded
	}
	b.ReportMetric(float64(total)/float64(b.N), "nodes/op")
}

// BenchmarkPuzzleExpand measures raw successor generation.
func BenchmarkPuzzleExpand(b *testing.B) {
	b.ReportAllocs()
	dom := puzzle.NewDomain(puzzle.Scramble(3, 40))
	node := dom.Root()
	buf := make([]puzzle.Node, 0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = dom.Expand(node, buf[:0])
	}
	_ = buf
}

// runScenario is the shared body of the per-phase micro-benchmarks: one
// op is one full deterministic run of the pinned internal/bench scenario,
// with the schedule-derived per-cycle and per-phase costs reported as
// extra metrics so allocation regressions are attributable to a phase.
func runScenario(b *testing.B, name string) {
	b.Helper()
	b.ReportAllocs()
	sc, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	var cycles, phases int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := sc.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles, phases = stats.Cycles, stats.LBPhases
	}
	b.StopTimer()
	if cycles > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cycles), "ns/cycle")
	}
	b.ReportMetric(float64(cycles), "cycles/op")
	b.ReportMetric(float64(phases), "lbphases/op")
}

// BenchmarkExpansionCycle isolates the node-expansion hot path: the
// pinned scenario never triggers a load-balancing phase, so every
// allocation it reports comes from the per-cycle expansion loop.
func BenchmarkExpansionCycle(b *testing.B) {
	runScenario(b, bench.ExpansionCycle)
}

// BenchmarkLBPhase isolates the load-balancing phase: the pinned scenario
// balances after every cycle, so matching, stack splitting and transfer
// accounting dominate both time and allocations.
func BenchmarkLBPhase(b *testing.B) {
	runScenario(b, bench.LBPhase)
}

// BenchmarkFlagFill measures the per-cycle flag maintenance of the
// structure-of-arrays core at CM-2 scale (P=8192): branch-free bitset
// writes, the word-popcount reduction, the derived idle flags, and the
// bridge back to []bool consumers.  Zero allocs/op is part of the
// contract.
func BenchmarkFlagFill(b *testing.B) {
	b.ReportAllocs()
	const p = 8192
	busy := scan.NewBits(p)
	idle := scan.NewBits(p)
	bools := make([]bool, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pe := 0; pe < p; pe++ {
			busy.SetTo(pe, pe&3 == 0)
		}
		scan.ComplementInto(idle, busy, p)
		busy.FillBools(bools)
		if busy.CountBits()+idle.CountBits() != p {
			b.Fatal("flag fill lost bits")
		}
	}
}

// BenchmarkArenaTransfer measures a load-balancing transfer in the
// structure-of-arrays core: a half-stack split as range copies within the
// arena, the deferred bit re-sync, and the receiver drain.  Steady state
// must not allocate.
func BenchmarkArenaTransfer(b *testing.B) {
	b.ReportAllocs()
	a := stack.NewArena[int](2)
	buf := make([]int, 4)
	for l := 0; l < 16; l++ {
		for j := range buf {
			buf[j] = l*4 + j
		}
		a.PushLevel(0, buf)
	}
	sp := stack.HalfStack[int]{}
	donor, recv := 0, 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !a.Splittable(donor) {
			donor, recv = recv, donor
		}
		sp.SplitArena(a, donor, recv)
		a.SyncBits(donor)
		a.SyncBits(recv)
	}
}

// BenchmarkStackSplit measures the engine's transfer mechanics in steady
// state: split a donor stack into a recycled spare and copy the donated
// part onto a receiver, swapping roles when the donor runs dry, exactly as
// Context.Transfer does during a load-balancing phase.
func BenchmarkStackSplit(b *testing.B) {
	b.ReportAllocs()
	donor := stack.New[int]()
	buf := make([]int, 4)
	for l := 0; l < 16; l++ {
		for j := range buf {
			buf[j] = l*4 + j
		}
		donor.PushLevelCopy(buf)
	}
	recv := stack.New[int]()
	spare := stack.New[int]()
	sp := stack.BottomNode[int]{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !donor.Splittable() {
			donor, recv = recv, donor
		}
		sp.SplitInto(donor, spare)
		recv.AppendCopy(spare)
		spare.Clear()
	}
}

// Benchmarks regenerating every table and figure of the paper at reduced
// (tiny) scale, so `go test -bench=.` exercises the complete experiment
// pipeline.  Full-scale reproductions run via `go run ./cmd/experiments
// -scale full <experiment>`; see EXPERIMENTS.md for measured results.
package simdtree

import (
	"io"
	"testing"

	"simdtree/internal/experiments"
	"simdtree/internal/puzzle"
	"simdtree/internal/search"
	"simdtree/internal/synthetic"
)

// tinySuite builds the reduced-scale synthetic suite shared by the table
// benchmarks.
func tinySuite() (*experiments.Suite[synthetic.Node], experiments.Scale) {
	sc := experiments.TinyScale
	return &experiments.Suite[synthetic.Node]{
		Workloads: experiments.SyntheticWorkloads(sc.Tiers),
		P:         sc.P,
		Workers:   sc.Workers,
		Out:       io.Discard,
	}, sc
}

var benchThresholds = []float64{0.50, 0.70, 0.90}

func BenchmarkTable2(b *testing.B) {
	s, _ := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table2(benchThresholds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	s, _ := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	s, _ := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	s, _ := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table5(s.Workloads[1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table6(io.Discard)
	}
}

func BenchmarkFig1(b *testing.B) {
	s, _ := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig1("GP-DK", s.Workloads[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	s, _ := tinySuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table2(benchThresholds)
		if err != nil {
			b.Fatal(err)
		}
		experiments.Fig3(rows, io.Discard)
	}
}

func BenchmarkFig4(b *testing.B) {
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.IsoGrid(experiments.Fig4Labels(), sc.GridPs, sc.GridWs, sc.Workers,
			[]float64{0.5, 0.65}, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.IsoGrid(experiments.Fig7Labels(), sc.GridPs, sc.GridWs, sc.Workers,
			[]float64{0.5, 0.65}, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	s, _ := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig8(s.Workloads[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSplitter(b *testing.B) {
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSplitters(sc.Tiers[0], sc.P, 0.85, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationInit(b *testing.B) {
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationInit(sc.Tiers[0], sc.P, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTransfers(b *testing.B) {
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTransfers(sc.Tiers[0], sc.P, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTopology(b *testing.B) {
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTopology(sc.Tiers[0], sc.P, 0.85, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMessageSize(b *testing.B) {
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMessageSize(sc.Tiers[0], sc.P, sc.Workers, 1.0, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDKGamma(b *testing.B) {
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDKGamma(sc.Tiers[0], sc.P, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationHeuristic(b *testing.B) {
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationHeuristic(2023, 24, sc.P, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnomalies(b *testing.B) {
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Anomalies(16, []uint64{1}, []int{16, 64}, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselines(b *testing.B) {
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BaselineComparison(sc.Tiers[0], sc.P, sc.Workers, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMIMDComparison(b *testing.B) {
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MIMDComparison(sc.Tiers[0], sc.P, sc.Workers, 1, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVariance(b *testing.B) {
	_, sc := tinySuite()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Variance(sc.Tiers[0], sc.P, sc.Workers, 3,
			[]string{"GP-DK", "nGP-S0.90"}, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialIDAStar measures the serial 15-puzzle searcher that
// provides the ground-truth problem sizes.
func BenchmarkSerialIDAStar(b *testing.B) {
	dom := puzzle.NewDomain(puzzle.Scramble(3, 26))
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		r := search.IDAStar[puzzle.Node](dom, 0)
		total += r.Expanded
	}
	b.ReportMetric(float64(total)/float64(b.N), "nodes/op")
}

// BenchmarkPuzzleExpand measures raw successor generation.
func BenchmarkPuzzleExpand(b *testing.B) {
	dom := puzzle.NewDomain(puzzle.Scramble(3, 40))
	node := dom.Root()
	buf := make([]puzzle.Node, 0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = dom.Expand(node, buf[:0])
	}
	_ = buf
}
